package concept

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/bitset"
	"repro/internal/obs"
	"repro/internal/scanio"
)

// Versioned binary snapshot codec for lattices, so cabled restarts warm
// instead of rebuilding every session's lattice from its trace corpus.
//
// Container layout (all integers little-endian; see FORMATS.md):
//
//	"CLTS" | u8 version
//	u32 numObjects | u32 numAttributes | u32 numConcepts | u32 top | u32 bottom
//	numObjects × name    (u32 len | bytes)
//	numAttributes × name (u32 len | bytes)
//	numObjects × row     (u32 nwords | nwords × u64)   — trimmed words
//	numConcepts × { intent: u32 nwords | words ; extent: u32 nwords | words }
//	numConcepts × { u32 nparents | nparents × u32 }    — strictly ascending IDs
//	u32 crc32 (IEEE) over every preceding byte
//
// Only primary state is serialized: attribute columns, children edges, the
// intent index, and the γ/μ query tables are all derived (and validated)
// on read. Word lists are written trimmed, which makes the serialization a
// fixpoint: write ∘ read ∘ write produces identical bytes.
//
// The reader is hardened against corrupt or adversarial input the way the
// scanio readers are: every count is bounded before allocation, every ID
// and bit is range-checked, and failures come back as errors — never
// panics, never unbounded allocations. Bytes after the CRC trailer are
// left unread, so a snapshot can be embedded length-prefixed in a larger
// container.

const (
	snapshotMagic   = "CLTS"
	snapshotVersion = 1
	// maxSnapshotDim caps object/attribute/concept counts; it bounds every
	// allocation the reader makes before the CRC is verified.
	maxSnapshotDim = 1 << 24
)

// WriteSnapshot serializes the lattice (including its context) to w.
func WriteSnapshot(w io.Writer, l *Lattice) error {
	sp := obs.StartSpan("lattice.snapshot.write")
	defer sp.End()
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := io.WriteString(out, snapshotMagic); err != nil {
		return err
	}
	if _, err := out.Write([]byte{snapshotVersion}); err != nil {
		return err
	}
	numObj, numAttr, n := l.ctx.NumObjects(), l.ctx.NumAttributes(), len(l.concepts)
	for _, v := range []int{numObj, numAttr, n, l.top, l.bottom} {
		if err := writeU32(out, uint32(v)); err != nil {
			return err
		}
	}
	for _, name := range l.ctx.objNames {
		if err := writeString(out, name); err != nil {
			return err
		}
	}
	for _, name := range l.ctx.attrNames {
		if err := writeString(out, name); err != nil {
			return err
		}
	}
	for _, row := range l.ctx.rows {
		if err := writeWords(out, row.Words()); err != nil {
			return err
		}
	}
	for _, c := range l.concepts {
		if err := writeWords(out, c.Intent.Words()); err != nil {
			return err
		}
		if err := writeWords(out, c.Extent.Words()); err != nil {
			return err
		}
	}
	for _, ps := range l.parents {
		if err := writeU32(out, uint32(len(ps))); err != nil {
			return err
		}
		for _, p := range ps {
			if err := writeU32(out, uint32(p)); err != nil {
				return err
			}
		}
	}
	// The trailer is the CRC of everything above; written to bw only, so it
	// does not hash itself.
	if err := writeU32(bw, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a lattice written by WriteSnapshot, rebuilding
// the derived state (columns, children edges, intent index, query tables)
// and validating both the CRC and every structural invariant the lattice's
// query paths rely on.
func ReadSnapshot(r io.Reader) (*Lattice, error) {
	sp := obs.StartSpan("lattice.snapshot.read")
	defer sp.End()
	sr := &snapReader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}

	magic := make([]byte, len(snapshotMagic))
	if err := sr.readFull(magic); err != nil {
		return nil, fmt.Errorf("concept: snapshot: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("concept: snapshot: bad magic %q", magic)
	}
	ver, err := sr.readByte()
	if err != nil {
		return nil, fmt.Errorf("concept: snapshot: reading version: %w", err)
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("concept: snapshot: unsupported version %d", ver)
	}
	var dims [5]int
	for i := range dims {
		v, err := sr.readU32()
		if err != nil {
			return nil, fmt.Errorf("concept: snapshot: reading header: %w", err)
		}
		dims[i] = int(v)
	}
	numObj, numAttr, n, top, bottom := dims[0], dims[1], dims[2], dims[3], dims[4]
	if numObj > maxSnapshotDim || numAttr > maxSnapshotDim || n > maxSnapshotDim {
		return nil, fmt.Errorf("concept: snapshot: dimensions %d×%d×%d exceed sanity cap", numObj, numAttr, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("concept: snapshot: zero concepts (a built lattice has at least the seed)")
	}
	if top >= n || bottom >= n {
		return nil, fmt.Errorf("concept: snapshot: top/bottom %d/%d out of range (%d concepts)", top, bottom, n)
	}

	// Slices sized by header counts grow by append with a bounded initial
	// capacity: a corrupt header claiming 2²⁴ objects then errors after the
	// few elements the stream physically contains, instead of allocating
	// gigabytes up front.
	ctx := &Context{
		objNames:  make([]string, 0, boundedCap(numObj)),
		attrNames: make([]string, 0, boundedCap(numAttr)),
		rows:      make([]*bitset.Set, 0, boundedCap(numObj)),
	}
	for o := 0; o < numObj; o++ {
		name, err := sr.readString()
		if err != nil {
			return nil, fmt.Errorf("concept: snapshot: object name %d: %w", o, err)
		}
		ctx.objNames = append(ctx.objNames, name)
	}
	for a := 0; a < numAttr; a++ {
		name, err := sr.readString()
		if err != nil {
			return nil, fmt.Errorf("concept: snapshot: attribute name %d: %w", a, err)
		}
		ctx.attrNames = append(ctx.attrNames, name)
	}
	var words []uint64
	for o := 0; o < numObj; o++ {
		if words, err = sr.readWords(words, numAttr); err != nil {
			return nil, fmt.Errorf("concept: snapshot: row %d: %w", o, err)
		}
		row := bitset.New(numAttr)
		row.LoadWords(words)
		ctx.rows = append(ctx.rows, row)
	}
	ctx.cols = make([]*bitset.Set, numAttr)
	for a := range ctx.cols {
		ctx.cols[a] = bitset.New(numObj)
	}
	for o, row := range ctx.rows {
		row.Range(func(a int) bool {
			ctx.cols[a].Add(o)
			return true
		})
	}

	arena := bitset.NewArena()
	l := &Lattice{ctx: ctx, arena: arena, top: top, bottom: bottom}
	l.concepts = make([]*Concept, 0, boundedCap(n))
	l.idx.initFor(boundedCap(n))
	var chunk []Concept
	for i := 0; i < n; i++ {
		if words, err = sr.readWords(words, numAttr); err != nil {
			return nil, fmt.Errorf("concept: snapshot: concept %d intent: %w", i, err)
		}
		intent := arena.Set(numAttr, numAttr)
		intent.LoadWords(words)
		if words, err = sr.readWords(words, numObj); err != nil {
			return nil, fmt.Errorf("concept: snapshot: concept %d extent: %w", i, err)
		}
		extent := arena.Set(numObj, numObj)
		extent.LoadWords(words)
		if l.idx.lookup(l.concepts, intent) >= 0 {
			return nil, fmt.Errorf("concept: snapshot: duplicate intent at concept %d", i)
		}
		if len(chunk) == cap(chunk) {
			chunk = make([]Concept, 0, 256)
		}
		chunk = chunk[:len(chunk)+1]
		h := &chunk[len(chunk)-1]
		*h = Concept{ID: i, Extent: extent, Intent: intent}
		l.concepts = append(l.concepts, h)
		l.idx.insert(l.concepts, i)
	}

	// n is physically established by now (the stream contained n concepts),
	// so per-concept tables may be allocated directly.
	l.parents = make([][]int, n)
	totalEdges := 0
	lists := make([][]uint32, n)
	for i := range lists {
		cnt, err := sr.readU32()
		if err != nil {
			return nil, fmt.Errorf("concept: snapshot: parents of %d: %w", i, err)
		}
		if int(cnt) > n {
			return nil, fmt.Errorf("concept: snapshot: concept %d claims %d parents (%d concepts)", i, cnt, n)
		}
		ids := make([]uint32, 0, boundedCap(int(cnt)))
		prev := -1
		for j := 0; j < int(cnt); j++ {
			v, err := sr.readU32()
			if err != nil {
				return nil, fmt.Errorf("concept: snapshot: parents of %d: %w", i, err)
			}
			if int(v) >= n || int(v) <= prev {
				return nil, fmt.Errorf("concept: snapshot: parent list of %d not strictly ascending in range", i)
			}
			prev = int(v)
			ids = append(ids, v)
		}
		lists[i] = ids
		totalEdges += int(cnt)
	}

	// Verify the trailer before deriving anything from the payload.
	sum := sr.crc.Sum32()
	stored, err := sr.readTrailer()
	if err != nil {
		return nil, fmt.Errorf("concept: snapshot: reading crc: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("concept: snapshot: crc mismatch (stored %08x, computed %08x)", stored, sum)
	}

	// Derive: edge slabs exactly as linkCovers merges them, then the
	// validated query tables.
	parentSlab := make([]int, 0, totalEdges)
	for i, ids := range lists {
		start := len(parentSlab)
		for _, v := range ids {
			parentSlab = append(parentSlab, int(v))
		}
		l.parents[i] = parentSlab[start:len(parentSlab):len(parentSlab)]
	}
	l.children = make([][]int, n)
	childCount := make([]int, n)
	for _, ps := range l.parents {
		for _, p := range ps {
			childCount[p]++
		}
	}
	childSlab := make([]int, totalEdges)
	pos := 0
	for i, cnt := range childCount {
		l.children[i] = childSlab[pos : pos : pos+cnt]
		pos += cnt
	}
	for ci := 0; ci < n; ci++ {
		for _, p := range l.parents[ci] {
			l.children[p] = append(l.children[p], ci)
		}
	}
	if err := l.buildTablesChecked(); err != nil {
		return nil, err
	}
	return l, nil
}

// buildTablesChecked is buildTables with errors instead of panics, for
// rebuilding the γ/μ tables from deserialized (untrusted) state.
func (l *Lattice) buildTablesChecked() error {
	scratch := &bitset.Set{}
	l.objConcept = make([]int, l.ctx.NumObjects())
	for o := range l.objConcept {
		id := l.idx.lookup(l.concepts, l.ctx.Attributes(o))
		if id < 0 {
			return fmt.Errorf("concept: snapshot: row of object %d is not a closed intent", o)
		}
		l.objConcept[o] = id
	}
	l.attrConcept = make([]int, l.ctx.NumAttributes())
	for a := range l.attrConcept {
		l.ctx.SigmaInto(scratch, l.ctx.Objects(a))
		id := l.idx.lookup(l.concepts, scratch)
		if id < 0 {
			return fmt.Errorf("concept: snapshot: closure of attribute %d is not a closed intent", a)
		}
		l.attrConcept[a] = id
	}
	return nil
}

// boundedCap clamps a header-claimed count to a safe initial allocation.
func boundedCap(n int) int {
	if n > 4096 {
		return 4096
	}
	if n < 0 {
		return 0
	}
	return n
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if len(s) > scanio.MaxLineBytes {
		return fmt.Errorf("concept: snapshot: name of %d bytes exceeds the %d-byte cap", len(s), scanio.MaxLineBytes)
	}
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeWords(w io.Writer, ws []uint64) error {
	if err := writeU32(w, uint32(len(ws))); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range ws {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// snapReader reads the snapshot payload while hashing it, so the CRC check
// covers exactly the bytes consumed.
type snapReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (sr *snapReader) readFull(p []byte) error {
	if _, err := io.ReadFull(sr.r, p); err != nil {
		return err
	}
	_, _ = sr.crc.Write(p)
	return nil
}

func (sr *snapReader) readByte() (byte, error) {
	var b [1]byte
	if err := sr.readFull(b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func (sr *snapReader) readU32() (uint32, error) {
	var b [4]byte
	if err := sr.readFull(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// readTrailer reads the CRC trailer, which is not part of the hashed
// payload.
func (sr *snapReader) readTrailer() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(sr.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (sr *snapReader) readString() (string, error) {
	n, err := sr.readU32()
	if err != nil {
		return "", err
	}
	if int(n) > scanio.MaxLineBytes {
		return "", fmt.Errorf("string of %d bytes exceeds the %d-byte cap", n, scanio.MaxLineBytes)
	}
	buf := make([]byte, n)
	if err := sr.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readWords reads one length-prefixed word list into buf (reused across
// calls), validating the count against the universe size and rejecting
// bits at or beyond universe.
func (sr *snapReader) readWords(buf []uint64, universe int) ([]uint64, error) {
	cnt, err := sr.readU32()
	if err != nil {
		return nil, err
	}
	if int(cnt) > wordsFor(universe) {
		return nil, fmt.Errorf("%d words exceed the %d-word universe", cnt, wordsFor(universe))
	}
	if cap(buf) < int(cnt) {
		buf = make([]uint64, cnt)
	} else {
		buf = buf[:cnt]
	}
	var b [8]byte
	for i := range buf {
		if err := sr.readFull(b[:]); err != nil {
			return nil, err
		}
		buf[i] = binary.LittleEndian.Uint64(b[:])
	}
	if r := universe % 64; r != 0 && int(cnt) == wordsFor(universe) && buf[cnt-1]>>uint(r) != 0 {
		return nil, fmt.Errorf("set bits at or beyond universe %d", universe)
	}
	return buf, nil
}
