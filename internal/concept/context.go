// Package concept implements formal concept analysis (FCA) as used in
// Section 3 of the paper.
//
// A formal context relates a finite set of objects O to a finite set of
// attributes A through a relation R ⊆ O × A. A concept is a pair (X, Y)
// with X ⊆ O, Y ⊆ A such that Y is exactly the attributes shared by all of
// X and X is exactly the objects having all of Y. Concepts ordered by
// extent inclusion form a complete lattice.
//
// For specification debugging, objects are (representatives of classes of)
// traces and attributes are the transitions of a reference FA; (o, a) ∈ R
// iff transition a lies on some accepting run of the FA on o. The package
// is nevertheless generic: the animals example of Figures 9 and 10 is a
// plain context too.
//
// Lattices are built incrementally, one object at a time, in the style of
// Godin et al.'s Algorithm 1 (the algorithm the paper uses); a naive
// closure-enumeration builder is provided as an independently-implemented
// oracle for property tests.
package concept

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
)

// Context is a formal context: objects, attributes, and the incidence
// relation between them. Objects and attributes are dense indices with
// display names. Build one with NewContext and Relate.
type Context struct {
	objNames  []string
	attrNames []string
	rows      []*bitset.Set // rows[o] = attributes of object o
	cols      []*bitset.Set // cols[a] = objects having attribute a
}

// NewContext creates a context with the given object and attribute names
// and an empty relation.
func NewContext(objects, attributes []string) *Context {
	c := &Context{
		objNames:  append([]string(nil), objects...),
		attrNames: append([]string(nil), attributes...),
		rows:      make([]*bitset.Set, len(objects)),
		cols:      make([]*bitset.Set, len(attributes)),
	}
	for i := range c.rows {
		c.rows[i] = bitset.New(len(attributes))
	}
	for j := range c.cols {
		c.cols[j] = bitset.New(len(objects))
	}
	return c
}

// NumObjects returns the number of objects.
func (c *Context) NumObjects() int { return len(c.rows) }

// NumAttributes returns the number of attributes.
func (c *Context) NumAttributes() int { return len(c.cols) }

// ObjectName returns the display name of object o.
func (c *Context) ObjectName(o int) string { return c.objNames[o] }

// AttributeName returns the display name of attribute a.
func (c *Context) AttributeName(a int) string { return c.attrNames[a] }

// Relate records that object o has attribute a.
func (c *Context) Relate(o, a int) {
	if o < 0 || o >= len(c.rows) || a < 0 || a >= len(c.cols) {
		panic(fmt.Sprintf("concept: Relate(%d, %d) out of range (%d objects, %d attributes)",
			o, a, len(c.rows), len(c.cols)))
	}
	c.rows[o].Add(a)
	c.cols[a].Add(o)
}

// Has reports whether (o, a) is in the relation.
func (c *Context) Has(o, a int) bool { return c.rows[o].Has(a) }

// Attributes returns the attribute set of object o. The set is shared; do
// not mutate.
func (c *Context) Attributes(o int) *bitset.Set { return c.rows[o] }

// Objects returns the object set of attribute a. The set is shared; do not
// mutate.
func (c *Context) Objects(a int) *bitset.Set { return c.cols[a] }

// addObject appends one object with the given attribute row, extending the
// relation in place. The row is copied; the caller keeps ownership of its
// set. Attributes must already be validated in range.
func (c *Context) addObject(name string, row *bitset.Set) {
	o := len(c.rows)
	c.objNames = append(c.objNames, name)
	c.rows = append(c.rows, row.Clone())
	row.Range(func(a int) bool {
		c.cols[a].Add(o)
		return true
	})
}

// removeObject deletes object o, renumbering every later object down by
// one in both the row table and the attribute columns.
func (c *Context) removeObject(o int) {
	c.objNames = append(c.objNames[:o], c.objNames[o+1:]...)
	c.rows = append(c.rows[:o], c.rows[o+1:]...)
	for _, col := range c.cols {
		col.RemoveShift(o)
	}
}

// clone returns an independent deep copy of the context.
func (c *Context) clone() *Context {
	out := &Context{
		objNames:  append([]string(nil), c.objNames...),
		attrNames: append([]string(nil), c.attrNames...),
		rows:      make([]*bitset.Set, len(c.rows)),
		cols:      make([]*bitset.Set, len(c.cols)),
	}
	for i, r := range c.rows {
		out.rows[i] = r.Clone()
	}
	for j, col := range c.cols {
		out.cols[j] = col.Clone()
	}
	return out
}

// Sigma computes σ(X): the attributes common to every object in X. For the
// empty X it returns all attributes (the convention that makes concepts a
// complete lattice).
func (c *Context) Sigma(x *bitset.Set) *bitset.Set {
	return c.SigmaInto(&bitset.Set{}, x)
}

// SigmaInto computes σ(X) into dst, reusing dst's storage, and returns dst.
func (c *Context) SigmaInto(dst, x *bitset.Set) *bitset.Set {
	dst.FillFull(len(c.cols))
	x.Range(func(o int) bool {
		dst.IntersectWith(c.rows[o])
		return true
	})
	return dst
}

// Tau computes τ(Y): the objects having every attribute in Y. For the empty
// Y it returns all objects.
func (c *Context) Tau(y *bitset.Set) *bitset.Set {
	return c.TauInto(&bitset.Set{}, y)
}

// TauInto computes τ(Y) into dst, reusing dst's storage, and returns dst.
func (c *Context) TauInto(dst, y *bitset.Set) *bitset.Set {
	dst.FillFull(len(c.rows))
	y.Range(func(a int) bool {
		dst.IntersectWith(c.cols[a])
		return true
	})
	return dst
}

// Similarity returns sim(X) = |σ(X)|: the number of attributes shared by all
// objects of X (Section 3.1). Smaller concepts deeper in the lattice have
// higher similarity.
func (c *Context) Similarity(x *bitset.Set) int { return c.Sigma(x).Len() }

// IsConcept reports whether (extent, intent) is a formal concept of c.
func (c *Context) IsConcept(extent, intent *bitset.Set) bool {
	return c.Sigma(extent).Equal(intent) && c.Tau(intent).Equal(extent)
}

// String renders the context as a cross table (objects as rows).
func (c *Context) String() string {
	var b strings.Builder
	width := 0
	for _, n := range c.objNames {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Fprintf(&b, "%*s |", width, "")
	for j := range c.cols {
		fmt.Fprintf(&b, " %s", c.attrNames[j])
	}
	b.WriteByte('\n')
	for o := range c.rows {
		fmt.Fprintf(&b, "%*s |", width, c.objNames[o])
		for j := range c.cols {
			mark := " "
			if c.rows[o].Has(j) {
				mark = "x"
			}
			pad := len(c.attrNames[j]) - 1
			fmt.Fprintf(&b, " %s%s", mark, strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
