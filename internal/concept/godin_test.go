package concept

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// snapshotBytes serializes the lattice; byte equality of snapshots is the
// pinned notion of "identical" for the Godin determinism properties (it
// covers the context, every concept's sets in ID order, and all covers).
func snapshotBytes(t testing.TB, l *Lattice) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPropParallelGodinDeterministic pins the tentpole property: the pruned
// Godin insertion step — serial or parallel at any worker count — produces
// a lattice byte-identical (WriteSnapshot) to both the Workers=1 pruned
// build and the retained legacy full-scan build, over randomized corpora
// spanning the one-word fast path (≤64 attributes) and the general path.
// parGodinMinCand is forced down so the parallel classify/merge actually
// runs on test-size candidate sets.
func TestPropParallelGodinDeterministic(t *testing.T) {
	defer func(mc int) { parGodinMinCand = mc }(parGodinMinCand)
	parGodinMinCand = 1

	rng := rand.New(rand.NewSource(20260808))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for iter := 0; iter < iters; iter++ {
		var c *Context
		switch iter % 3 {
		case 0:
			c = randomContext(rng, 40, 24)
		case 1:
			c = denseRandomContext(rng, 10+rng.Intn(50), 1+rng.Intn(30))
		default:
			// Past one word: exercises the general (Set-walking) scan.
			c = randomContext(rng, 30, 100)
		}
		legacy, err := BuildCtx(context.Background(), c, WithWorkers(1), withLegacyGodin())
		if err != nil {
			t.Fatal(err)
		}
		want := snapshotBytes(t, legacy)
		for _, workers := range []int{1, 2, 8} {
			l, err := BuildCtx(context.Background(), c, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if got := snapshotBytes(t, l); !bytes.Equal(got, want) {
				t.Fatalf("iter %d: pruned build (workers=%d) snapshot differs from legacy serial build on\n%s",
					iter, workers, c)
			}
			checkLatticeInvariants(t, l)
		}
	}
}

// TestParallelGodinDeterministicBigCorpus is the same property on a
// mid-size slice of the >10⁴-class xtrace fixture — real duplicate-row
// replay territory (thousands of trace classes, few distinct rows).
func TestParallelGodinDeterministicBigCorpus(t *testing.T) {
	defer func(mc int) { parGodinMinCand = mc }(parGodinMinCand)
	parGodinMinCand = 1

	set := bigCorpusClasses(4000)
	fc, err := TraceContext(set.Representatives(), bigCorpusRef())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := BuildCtx(context.Background(), fc, WithWorkers(1), withLegacyGodin())
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, legacy)
	for _, workers := range []int{1, 2, 8} {
		l, err := BuildCtx(context.Background(), fc, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := snapshotBytes(t, l); !bytes.Equal(got, want) {
			t.Fatalf("pruned big-corpus build (workers=%d) snapshot differs from legacy serial build", workers)
		}
	}
}

// TestGodinPrunedMatchesLegacy is the pruned-vs-unpruned differential over
// incremental add sequences: a pruned lattice and a legacy-pinned lattice
// start from the same prefix context and receive the same rows through
// AddObjectCtx one at a time, staying byte-identical at every step. This
// exercises the replay cache, the lazily built inverted index, and the
// incremental updateTablesAfterAdd against the legacy loop.
func TestGodinPrunedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(99173))
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for iter := 0; iter < iters; iter++ {
		full := randomContext(rng, 30, 20)
		no := full.NumObjects()
		base := 1 + rng.Intn(no)
		prefix := func() *Context {
			objs := make([]string, base)
			for i := range objs {
				objs[i] = fmt.Sprintf("o%d", i)
			}
			attrs := make([]string, full.NumAttributes())
			for i := range attrs {
				attrs[i] = fmt.Sprintf("a%d", i)
			}
			c := NewContext(objs, attrs)
			for o := 0; o < base; o++ {
				full.Attributes(o).Range(func(a int) bool {
					c.Relate(o, a)
					return true
				})
			}
			return c
		}
		pruned, err := BuildCtx(context.Background(), prefix(), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := BuildCtx(context.Background(), prefix(), WithWorkers(1), withLegacyGodin())
		if err != nil {
			t.Fatal(err)
		}
		for o := base; o < no; o++ {
			name := fmt.Sprintf("o%d", o)
			if err := pruned.AddObjectCtx(context.Background(), name, full.Attributes(o)); err != nil {
				t.Fatal(err)
			}
			if err := legacy.AddObjectCtx(context.Background(), name, full.Attributes(o)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snapshotBytes(t, pruned), snapshotBytes(t, legacy)) {
				t.Fatalf("iter %d: pruned and legacy lattices diverge after adding object %d of\n%s",
					iter, o, full)
			}
		}
		requireByteIdentical(t, pruned, legacy, "pruned vs legacy after adds")
	}
}

// BenchmarkParallel publishes the worker-scaling curves of the phases that
// honor WithWorkers — the Godin insertion scan inside Build, the cover
// linking pass, and the incremental add. Worker counts are sub-benchmark
// names (w1..w8) so the bench pipeline keys them stably; on a single-core
// box the curves are flat and only the multi-core lane shows speedup.
func BenchmarkParallel(b *testing.B) {
	fc, err := bigCorpusContext()
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 2, 4, 8}
	b.Run("Build", func(b *testing.B) {
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					l, err := BuildCtx(context.Background(), fc, WithWorkers(w))
					if err != nil {
						b.Fatal(err)
					}
					if l.Len() == 0 {
						b.Fatal("empty lattice")
					}
				}
			})
		}
	})
	b.Run("LinkCovers", func(b *testing.B) {
		l := Build(fc)
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := l.linkCovers(context.Background(), w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	b.Run("AddTrace", func(b *testing.B) {
		ref := bigCorpusRef()
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
				l, err := BuildCtx(context.Background(), fc.clone(), WithWorkers(w))
				if err != nil {
					b.Fatal(err)
				}
				fresh := benchFreshTraces(b)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i > 0 && i%256 == 0 {
						b.StopTimer()
						l, err = BuildCtx(context.Background(), fc.clone(), WithWorkers(w))
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
					}
					tr := fresh[i%len(fresh)]
					tr.ID = fmt.Sprintf("bench-par-add-%d-%d", w, i)
					if err := l.AddTraceCtx(context.Background(), tr, ref); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkSortInts pins the insertionSortInts cutoff: small cover lists
// must stay on the branch-cheap insertion sort (no regression from the
// slices.Sort switch), large layers get the O(n log n) path.
func BenchmarkSortInts(b *testing.B) {
	bench := func(n int) func(*testing.B) {
		return func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			src := make([]int, n)
			for i := range src {
				src[i] = rng.Intn(1 << 20)
			}
			buf := make([]int, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				insertionSortInts(buf)
			}
		}
	}
	b.Run("Small8", bench(8))
	b.Run("Small32", bench(32))
	b.Run("Large1024", bench(1024))
}
