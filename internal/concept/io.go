package concept

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/scanio"
)

// This file implements the Burmeister .cxt format, the lingua franca of
// formal-concept-analysis tools, so contexts can be exchanged with other
// FCA software:
//
//	B
//	<optional name line>
//	<number of objects>
//	<number of attributes>
//	<blank line>            (accepted but not required)
//	object names, one per line
//	attribute names, one per line
//	one row per object: 'X' = related, '.' = not related
//
// WriteContext always emits the name line; ReadContext accepts files with
// or without it (disambiguating by whether the line parses as a count).

// WriteContext serializes the context in Burmeister format.
func WriteContext(w io.Writer, c *Context, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "B")
	fmt.Fprintln(bw, name)
	fmt.Fprintln(bw, c.NumObjects())
	fmt.Fprintln(bw, c.NumAttributes())
	fmt.Fprintln(bw)
	for _, n := range c.objNames {
		if strings.ContainsAny(n, "\n") {
			return fmt.Errorf("concept: object name %q contains newline", n)
		}
		fmt.Fprintln(bw, n)
	}
	for _, n := range c.attrNames {
		if strings.ContainsAny(n, "\n") {
			return fmt.Errorf("concept: attribute name %q contains newline", n)
		}
		fmt.Fprintln(bw, n)
	}
	for o := 0; o < c.NumObjects(); o++ {
		var row strings.Builder
		for a := 0; a < c.NumAttributes(); a++ {
			if c.Has(o, a) {
				row.WriteByte('X')
			} else {
				row.WriteByte('.')
			}
		}
		fmt.Fprintln(bw, row.String())
	}
	return bw.Flush()
}

// ReadContext parses a Burmeister-format context, returning the context
// and its name line (empty when absent).
func ReadContext(r io.Reader) (*Context, string, error) {
	sc := scanio.NewScanner(r)
	// Collect lines, skipping blank lines only where the format allows.
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, "", scanio.LineError("concept", len(lines)+1, err)
	}
	pos := 0
	next := func() (string, bool) {
		if pos >= len(lines) {
			return "", false
		}
		l := lines[pos]
		pos++
		return l, true
	}
	header, ok := next()
	if !ok || strings.TrimSpace(header) != "B" {
		return nil, "", scanio.LineError("concept", 1, fmt.Errorf("not a Burmeister context (missing B header)"))
	}
	// The next line is either the name or the object count.
	line, ok := next()
	if !ok {
		return nil, "", scanio.LineError("concept", pos+1, fmt.Errorf("truncated context"))
	}
	name := ""
	nObj, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil {
		name = line
		line, ok = next()
		if !ok {
			return nil, "", scanio.LineError("concept", pos+1, fmt.Errorf("truncated context"))
		}
		nObj, err = strconv.Atoi(strings.TrimSpace(line))
		if err != nil {
			return nil, "", scanio.LineError("concept", pos, fmt.Errorf("bad object count %q", line))
		}
	}
	line, ok = next()
	if !ok {
		return nil, "", scanio.LineError("concept", pos+1, fmt.Errorf("truncated context"))
	}
	nAttr, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil {
		return nil, "", scanio.LineError("concept", pos, fmt.Errorf("bad attribute count %q", line))
	}
	if nObj < 0 || nAttr < 0 {
		return nil, "", scanio.LineError("concept", pos, fmt.Errorf("negative dimensions %d x %d", nObj, nAttr))
	}
	// Optional blank separator.
	if pos < len(lines) && strings.TrimSpace(lines[pos]) == "" {
		pos++
	}
	// Bound each declared count by the lines actually present before
	// computing `needed` or allocating: a huge count would overflow the
	// sum (sliding past the check below) and then panic in make.
	remaining := len(lines) - pos
	if nObj > remaining || nAttr > remaining {
		return nil, "", scanio.LineError("concept", len(lines)+1, fmt.Errorf("context declares %d x %d but only %d lines remain", nObj, nAttr, remaining))
	}
	needed := nObj + nAttr + nObj
	if remaining < needed {
		return nil, "", scanio.LineError("concept", len(lines)+1, fmt.Errorf("context needs %d more lines, have %d", needed, remaining))
	}
	objNames := make([]string, nObj)
	for i := range objNames {
		objNames[i], _ = next()
	}
	attrNames := make([]string, nAttr)
	for i := range attrNames {
		attrNames[i], _ = next()
	}
	c := NewContext(objNames, attrNames)
	for o := 0; o < nObj; o++ {
		row, _ := next()
		row = strings.TrimRight(row, " \t\r")
		if len(row) != nAttr {
			return nil, "", scanio.LineError("concept", pos, fmt.Errorf("row %d has %d cells, want %d", o, len(row), nAttr))
		}
		for a := 0; a < nAttr; a++ {
			switch row[a] {
			case 'X', 'x':
				c.Relate(o, a)
			case '.':
			default:
				return nil, "", scanio.LineError("concept", pos, fmt.Errorf("row %d: bad cell %q", o, row[a]))
			}
		}
	}
	return c, name, nil
}
