package concept

import "repro/internal/bitset"

// Clone returns an independent deep copy of the lattice, including its
// context, backed by a fresh arena. Sessions that mutate a cached lattice
// clone it first (copy-on-write), so the cache keeps serving the original
// to later uploads of the same corpus.
func (l *Lattice) Clone() *Lattice {
	arena := bitset.NewArena()
	nl := &Lattice{
		ctx:     l.ctx.clone(),
		top:     l.top,
		bottom:  l.bottom,
		arena:   arena,
		workers: l.workers,
		// reps/repRows/inv stay nil for lazy rebuild; the insertion-step
		// pinning travels with the copy.
		legacyGodin: l.legacyGodin,
	}
	headers := make([]Concept, len(l.concepts))
	nl.concepts = make([]*Concept, len(l.concepts))
	for i, c := range l.concepts {
		h := &headers[i]
		*h = Concept{ID: c.ID, Extent: arena.Clone(c.Extent), Intent: arena.Clone(c.Intent)}
		nl.concepts[i] = h
	}
	nl.parents = cloneIntTable(l.parents)
	nl.children = cloneIntTable(l.children)
	nl.idx = l.idx.clone()
	nl.objConcept = append([]int(nil), l.objConcept...)
	nl.attrConcept = append([]int(nil), l.attrConcept...)
	return nl
}

// cloneIntTable deep-copies a cover-edge table into one slab, preserving
// the nil/non-nil distinction of each row.
func cloneIntTable(t [][]int) [][]int {
	out := make([][]int, len(t))
	total := 0
	for _, xs := range t {
		total += len(xs)
	}
	slab := make([]int, 0, total)
	for i, xs := range t {
		if xs == nil {
			continue
		}
		start := len(slab)
		slab = append(slab, xs...)
		out[i] = slab[start:len(slab):len(slab)]
	}
	return out
}
