// Package verify implements the trace-level temporal-specification checker
// of Section 2.1: it simulates scenario traces against a specification FA
// and reports the traces the specification rejects as violation traces.
//
// The paper's setting runs a static verifier over whole programs; what the
// debugging method consumes is only the resulting set of violation traces,
// so this checker — which extracts scenarios from concrete execution traces
// with the Strauss front end and checks each against the FA — exercises the
// same downstream code paths (see DESIGN.md, substitutions).
package verify

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/mine"
	"repro/internal/trace"
)

// Violation is one rejected trace with the position where rejection
// manifested.
type Violation struct {
	// Trace is the violating scenario trace.
	Trace trace.Trace
	// At is the event index at which every run of the specification died,
	// or len(Trace.Events) when the trace ran to completion without
	// reaching an accepting state (e.g. a resource never released).
	At int
}

// String renders the violation with a caret under the offending event.
func (v Violation) String() string {
	if v.At >= len(v.Trace.Events) {
		return fmt.Sprintf("%s <incomplete at end>", v.Trace.Key())
	}
	return fmt.Sprintf("%s <violates at event %d: %s>", v.Trace.Key(), v.At, v.Trace.Events[v.At])
}

// Checker binds a specification to its compiled simulation plan once, so
// callers that check in a loop — cabled's stream path checks a session's
// reference FA against every open stream — never pay recompilation. The
// package-level Check/CheckSet/Partition remain as one-shot conveniences
// built on it.
//
// A Checker is safe for concurrent use: the compiled plan is immutable
// and shared.
type Checker struct {
	spec *fa.FA
	sim  *fa.Sim
}

// NewChecker compiles the specification once and returns the reusable
// checker. This is the plan-reuse hoist for loops: fa.Sim caches per
// Builder-built automaton, but zero-value FAs recompile on every Sim
// call, and even cached lookups repeat interner work per invocation —
// the Checker pins the plan unconditionally.
func NewChecker(spec *fa.FA) *Checker {
	return &Checker{spec: spec, sim: spec.Sim()}
}

// Spec returns the specification the checker was compiled from.
func (c *Checker) Spec() *fa.FA { return c.spec }

// Sim exposes the pinned plan so online checkers (internal/stream) can
// share it.
func (c *Checker) Sim() *fa.Sim { return c.sim }

// Check simulates each trace against the specification and returns the
// violations in input order.
func (c *Checker) Check(traces []trace.Trace) []Violation {
	var out []Violation
	for _, t := range traces {
		if at := c.sim.RejectsAt(t); at >= 0 {
			out = append(out, Violation{Trace: t, At: at})
		}
	}
	return out
}

// CheckSet checks every trace of a set and returns the violating traces
// as a set alongside the per-trace violations (duplicates included, in
// set order). Each equivalence class is simulated once — duplicates
// share their class's verdict instead of re-running the automaton.
func (c *Checker) CheckSet(set *trace.Set) (*trace.Set, []Violation) {
	vset := &trace.Set{}
	var violations []Violation
	for _, cl := range set.Classes() {
		at := c.sim.RejectsAt(cl.Rep)
		if at < 0 {
			continue
		}
		for j := 0; j < cl.Count; j++ {
			t := cl.Rep
			t.ID = cl.IDs[j]
			violations = append(violations, Violation{Trace: t, At: at})
			vset.Add(t)
		}
	}
	return vset, violations
}

// Partition splits a set into the traces the specification accepts and
// the traces it rejects, preserving multiplicities. Each class is
// simulated once.
func (c *Checker) Partition(set *trace.Set) (accepted, rejected *trace.Set) {
	accepted, rejected = &trace.Set{}, &trace.Set{}
	for _, cl := range set.Classes() {
		dst := accepted
		if !c.sim.Accepts(cl.Rep) {
			dst = rejected
		}
		for j := 0; j < cl.Count; j++ {
			t := cl.Rep
			t.ID = cl.IDs[j]
			dst.Add(t)
		}
	}
	return accepted, rejected
}

// Check simulates each trace against the specification and returns the
// violations in input order. The specification is compiled once (fa.Sim)
// and the plan reused across all traces.
func Check(spec *fa.FA, traces []trace.Trace) []Violation {
	return NewChecker(spec).Check(traces)
}

// CheckSet checks every trace of a set (duplicates included) and returns
// the violating traces as a set alongside the per-class violations.
func CheckSet(spec *fa.FA, set *trace.Set) (*trace.Set, []Violation) {
	return NewChecker(spec).CheckSet(set)
}

// CheckRuns extracts scenarios from whole-program runs with the front end
// and checks each against the specification — the "test a specification
// against a program" workflow of Section 2.1.
func CheckRuns(spec *fa.FA, fe mine.FrontEnd, runs []mine.Run) (*trace.Set, []Violation) {
	return CheckSet(spec, fe.ExtractAll(runs))
}

// Partition splits a set into the traces the specification accepts and the
// traces it rejects, preserving multiplicities. Debugging sessions use it
// to separate violations from conforming scenarios.
func Partition(spec *fa.FA, set *trace.Set) (accepted, rejected *trace.Set) {
	return NewChecker(spec).Partition(set)
}
