// Package verify implements the trace-level temporal-specification checker
// of Section 2.1: it simulates scenario traces against a specification FA
// and reports the traces the specification rejects as violation traces.
//
// The paper's setting runs a static verifier over whole programs; what the
// debugging method consumes is only the resulting set of violation traces,
// so this checker — which extracts scenarios from concrete execution traces
// with the Strauss front end and checks each against the FA — exercises the
// same downstream code paths (see DESIGN.md, substitutions).
package verify

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/mine"
	"repro/internal/trace"
)

// Violation is one rejected trace with the position where rejection
// manifested.
type Violation struct {
	// Trace is the violating scenario trace.
	Trace trace.Trace
	// At is the event index at which every run of the specification died,
	// or len(Trace.Events) when the trace ran to completion without
	// reaching an accepting state (e.g. a resource never released).
	At int
}

// String renders the violation with a caret under the offending event.
func (v Violation) String() string {
	if v.At >= len(v.Trace.Events) {
		return fmt.Sprintf("%s <incomplete at end>", v.Trace.Key())
	}
	return fmt.Sprintf("%s <violates at event %d: %s>", v.Trace.Key(), v.At, v.Trace.Events[v.At])
}

// Check simulates each trace against the specification and returns the
// violations in input order. The specification is compiled once (fa.Sim)
// and the plan reused across all traces.
func Check(spec *fa.FA, traces []trace.Trace) []Violation {
	sim := spec.Sim()
	var out []Violation
	for _, t := range traces {
		if at := sim.RejectsAt(t); at >= 0 {
			out = append(out, Violation{Trace: t, At: at})
		}
	}
	return out
}

// CheckSet checks every trace of a set (duplicates included) and returns
// the violating traces as a set alongside the per-class violations.
func CheckSet(spec *fa.FA, set *trace.Set) (*trace.Set, []Violation) {
	violations := Check(spec, setTraces(set))
	vset := &trace.Set{}
	for _, v := range violations {
		vset.Add(v.Trace)
	}
	return vset, violations
}

// CheckRuns extracts scenarios from whole-program runs with the front end
// and checks each against the specification — the "test a specification
// against a program" workflow of Section 2.1.
func CheckRuns(spec *fa.FA, fe mine.FrontEnd, runs []mine.Run) (*trace.Set, []Violation) {
	return CheckSet(spec, fe.ExtractAll(runs))
}

// Partition splits a set into the traces the specification accepts and the
// traces it rejects, preserving multiplicities. Debugging sessions use it
// to separate violations from conforming scenarios.
func Partition(spec *fa.FA, set *trace.Set) (accepted, rejected *trace.Set) {
	sim := spec.Sim()
	accepted, rejected = &trace.Set{}, &trace.Set{}
	for _, t := range setTraces(set) {
		if sim.Accepts(t) {
			accepted.Add(t)
		} else {
			rejected.Add(t)
		}
	}
	return accepted, rejected
}

func setTraces(set *trace.Set) []trace.Trace {
	var all []trace.Trace
	for _, c := range set.Classes() {
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			all = append(all, t)
		}
	}
	return all
}
