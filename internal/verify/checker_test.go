package verify

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestCheckerMatchesPackageFunctions pins the Checker methods against the
// one-shot package functions over a set with duplicates, including
// violation order (set order, duplicates adjacent) and multiplicities.
func TestCheckerMatchesPackageFunctions(t *testing.T) {
	spec := buggyStdio()
	set := trace.NewSet(
		tr("a", "X = fopen()", "fclose(X)"),
		tr("b", "X = popen()", "pclose(X)"),
		tr("c", "X = popen()", "pclose(X)"),
		tr("d", "X = fopen()", "fread(X)"),
	)
	chk := NewChecker(spec)

	vset, vs := chk.CheckSet(set)
	wantVset, wantVs := CheckSet(spec, set)
	if vset.Total() != wantVset.Total() || vset.NumClasses() != wantVset.NumClasses() {
		t.Fatalf("CheckSet set: got %d/%d, want %d/%d",
			vset.Total(), vset.NumClasses(), wantVset.Total(), wantVset.NumClasses())
	}
	if len(vs) != len(wantVs) {
		t.Fatalf("CheckSet violations: got %d, want %d", len(vs), len(wantVs))
	}
	for i := range vs {
		if vs[i].Trace.ID != wantVs[i].Trace.ID || vs[i].At != wantVs[i].At {
			t.Errorf("violation %d: got %+v, want %+v", i, vs[i], wantVs[i])
		}
	}
	// Duplicate IDs keep their own identity on the fanned-out violations.
	if vs[0].Trace.ID != "b" || vs[1].Trace.ID != "c" || vs[2].Trace.ID != "d" {
		t.Fatalf("violation IDs: %s %s %s", vs[0].Trace.ID, vs[1].Trace.ID, vs[2].Trace.ID)
	}

	acc, rej := chk.Partition(set)
	wantAcc, wantRej := Partition(spec, set)
	if acc.Total() != wantAcc.Total() || rej.Total() != wantRej.Total() {
		t.Fatalf("Partition: got %d/%d, want %d/%d",
			acc.Total(), rej.Total(), wantAcc.Total(), wantRej.Total())
	}
	if acc.Total() != 1 || rej.Total() != 3 || rej.NumClasses() != 2 {
		t.Fatalf("Partition shape: acc=%d rej=%d rejClasses=%d",
			acc.Total(), rej.Total(), rej.NumClasses())
	}
}

// TestCheckerCompilesOnce pins the plan-reuse hoist: however many times
// the checker runs, the specification compiles exactly once.
func TestCheckerCompilesOnce(t *testing.T) {
	m := obs.Enable()
	defer obs.Disable()

	spec := buggyStdio()
	set := trace.NewSet(
		tr("a", "X = fopen()", "fclose(X)"),
		tr("b", "X = popen()", "pclose(X)"),
	)
	chk := NewChecker(spec)
	for i := 0; i < 50; i++ {
		chk.CheckSet(set)
		chk.Partition(set)
		chk.Check([]trace.Trace{tr("t", "X = fopen()", "fclose(X)")})
	}
	if got := m.Counter("fa.compile.plans").Value(); got != 1 {
		t.Fatalf("fa.compile.plans = %d after 150 checker calls, want 1", got)
	}
}

// TestCheckerCheckZeroAlloc pins the stream-loop hot path: checking
// accepted traces through a pinned plan allocates nothing per call — in
// particular, no per-call recompilation.
func TestCheckerCheckZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool caching; alloc counts unreliable")
	}
	chk := NewChecker(buggyStdio())
	traces := []trace.Trace{
		tr("a", "X = fopen()", "fread(X)", "fclose(X)"),
		tr("b", "X = popen()", "fwrite(X)", "fclose(X)"),
	}
	allocs := testing.AllocsPerRun(200, func() {
		if vs := chk.Check(traces); vs != nil {
			t.Fatal("accepted traces produced violations")
		}
	})
	if allocs != 0 {
		t.Fatalf("Checker.Check allocates %v per call, want 0", allocs)
	}
}
