package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/fa"
	"repro/internal/trace"
)

// Explanation describes why a specification rejects a trace: where every
// run died (or that the trace ended short of acceptance) and which events
// the specification would have allowed at that point. It turns a bare
// violation into the actionable message a verification tool shows.
type Explanation struct {
	// At is the offending event index, or len(events) for a trace that
	// ends without reaching an accepting state.
	At int
	// Got is the rejected event's rendering, or "" at end of trace.
	Got string
	// Expected lists the event renderings the specification allows at the
	// rejection point (sorted). For an end-of-trace rejection these are
	// the events that could continue the trace toward acceptance.
	Expected []string
}

// String renders the explanation in one line.
func (e Explanation) String() string {
	want := strings.Join(e.Expected, ", ")
	if want == "" {
		want = "<nothing: the specification allows no continuation>"
	}
	if e.Got == "" {
		return fmt.Sprintf("trace ends at event %d; expected one of: %s", e.At, want)
	}
	return fmt.Sprintf("event %d is %s; expected one of: %s", e.At, e.Got, want)
}

// Explain diagnoses why the specification rejects the trace; ok is false
// when the trace is actually accepted (nothing to explain).
func Explain(spec *fa.FA, t trace.Trace) (Explanation, bool) {
	at := spec.RejectsAt(t)
	if at < 0 {
		return Explanation{}, false
	}
	// Re-simulate to the rejection point to find the live state set there.
	cur := stateSet(spec, spec.StartStates())
	for i := 0; i < at && i < len(t.Events); i++ {
		cur = step(spec, cur, t.Events[i].String())
	}
	exp := Explanation{At: at}
	if at < len(t.Events) {
		exp.Got = t.Events[at].String()
	}
	allowed := map[string]bool{}
	cur.Range(func(s int) bool {
		for _, tr := range spec.Transitions() {
			if int(tr.From) == s {
				allowed[tr.Label.String()] = true
			}
		}
		return true
	})
	for label := range allowed {
		exp.Expected = append(exp.Expected, label)
	}
	sort.Strings(exp.Expected)
	return exp, true
}

func stateSet(spec *fa.FA, states []fa.State) *bitset.Set {
	out := bitset.New(spec.NumStates())
	for _, s := range states {
		out.Add(int(s))
	}
	return out
}

func step(spec *fa.FA, cur *bitset.Set, label string) *bitset.Set {
	next := bitset.New(spec.NumStates())
	cur.Range(func(s int) bool {
		for _, tr := range spec.Transitions() {
			if int(tr.From) == s && (fa.IsWildcard(tr.Label) || tr.Label.String() == label) {
				next.Add(int(tr.To))
			}
		}
		return true
	})
	return next
}
