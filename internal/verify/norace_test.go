//go:build !race

package verify

const raceEnabled = false
