package verify

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/mine"
	"repro/internal/trace"
)

// buggyStdio is the specification of Figure 1.
func buggyStdio() *fa.FA {
	b := fa.NewBuilder("stdio-buggy")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = fopen()", s[1])
	b.EdgeStr(s[0], "X = popen()", s[1])
	b.EdgeStr(s[1], "fread(X)", s[1])
	b.EdgeStr(s[1], "fwrite(X)", s[1])
	b.EdgeStr(s[1], "fclose(X)", s[2])
	return b.MustBuild()
}

func tr(id string, events ...string) trace.Trace { return trace.ParseEvents(id, events...) }

func TestCheck(t *testing.T) {
	spec := buggyStdio()
	traces := []trace.Trace{
		tr("ok", "X = fopen()", "fclose(X)"),
		tr("pclose", "X = popen()", "pclose(X)"),
		tr("leak", "X = fopen()", "fread(X)"),
	}
	vs := Check(spec, traces)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2", len(vs))
	}
	if vs[0].Trace.ID != "pclose" || vs[0].At != 1 {
		t.Errorf("violation 0 = %+v", vs[0])
	}
	if vs[1].Trace.ID != "leak" || vs[1].At != 2 {
		t.Errorf("violation 1 = %+v", vs[1])
	}
	if !strings.Contains(vs[0].String(), "pclose(X)") {
		t.Errorf("violation rendering = %q", vs[0])
	}
	if !strings.Contains(vs[1].String(), "incomplete") {
		t.Errorf("leak rendering = %q", vs[1])
	}
}

func TestCheckSetAndPartition(t *testing.T) {
	spec := buggyStdio()
	set := trace.NewSet(
		tr("a", "X = fopen()", "fclose(X)"),
		tr("b", "X = popen()", "pclose(X)"),
		tr("c", "X = popen()", "pclose(X)"),
	)
	vset, vs := CheckSet(spec, set)
	if vset.Total() != 2 || vset.NumClasses() != 1 || len(vs) != 2 {
		t.Fatalf("vset Total=%d Classes=%d len(vs)=%d", vset.Total(), vset.NumClasses(), len(vs))
	}
	acc, rej := Partition(spec, set)
	if acc.Total() != 1 || rej.Total() != 2 {
		t.Fatalf("Partition: acc=%d rej=%d", acc.Total(), rej.Total())
	}
}

func TestCheckRuns(t *testing.T) {
	spec := buggyStdio()
	runs := []mine.Run{{
		ID: "p:r1",
		Events: []event.Concrete{
			{Op: "fopen", Def: 1},
			{Op: "popen", Def: 2},
			{Op: "fclose", Uses: []event.ObjID{1}},
			{Op: "pclose", Uses: []event.ObjID{2}},
		},
	}}
	fe := mine.FrontEnd{Seeds: []string{"fopen", "popen"}}
	vset, vs := CheckRuns(spec, fe, runs)
	if vset.Total() != 1 || len(vs) != 1 {
		t.Fatalf("got %d violations", len(vs))
	}
	if vs[0].Trace.Key() != "X = popen(); pclose(X)" {
		t.Errorf("violation trace = %q", vs[0].Trace.Key())
	}
}

func TestCheckEmpty(t *testing.T) {
	if vs := Check(buggyStdio(), nil); vs != nil {
		t.Errorf("violations on empty input: %v", vs)
	}
}

func TestExplain(t *testing.T) {
	spec := buggyStdio()
	// Wrong event mid-trace: pclose where fclose/fread/fwrite expected.
	exp, ok := Explain(spec, tr("", "X = popen()", "pclose(X)"))
	if !ok {
		t.Fatal("accepted trace has no explanation")
	}
	if exp.At != 1 || exp.Got != "pclose(X)" {
		t.Errorf("explanation = %+v", exp)
	}
	want := "fclose(X), fread(X), fwrite(X)"
	if strings.Join(exp.Expected, ", ") != want {
		t.Errorf("Expected = %v, want %q", exp.Expected, want)
	}
	if !strings.Contains(exp.String(), "expected one of") {
		t.Errorf("rendering = %q", exp.String())
	}

	// End-of-trace rejection: the leak.
	exp, ok = Explain(spec, tr("", "X = fopen()", "fread(X)"))
	if !ok || exp.At != 2 || exp.Got != "" {
		t.Fatalf("leak explanation = %+v, ok=%v", exp, ok)
	}
	if !strings.Contains(exp.String(), "trace ends") {
		t.Errorf("rendering = %q", exp.String())
	}

	// Accepted traces have nothing to explain.
	if _, ok := Explain(spec, tr("", "X = fopen()", "fclose(X)")); ok {
		t.Error("explanation produced for accepted trace")
	}

	// Rejection with no live states: the expected set is empty.
	exp, ok = Explain(spec, tr("", "zzz()"))
	if !ok || len(exp.Expected) != 2 { // fopen/popen from the start state
		t.Errorf("start-state explanation = %+v", exp)
	}
}
