package verify

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/trace"
)

// This file implements the static side of Section 2.1: a verification tool
// that "analyzes the program and reports violation traces, which are
// program execution traces that demonstrate an apparent violation of the
// specification". Programs are modeled as automata over the same event
// alphabet as specifications — each accepted word is a possible per-object
// scenario of the program — and the verifier reports the shortest words
// the program can produce that the specification rejects, via the product
// of the program with the specification's complement.

// Static reports up to limit violation traces of length at most maxLen
// that the program model can produce but the specification rejects,
// shortest first. The returned traces carry IDs "static#<n>". An empty
// result means the program conforms to the specification up to maxLen.
func Static(program, spec *fa.FA, maxLen, limit int) ([]Violation, error) {
	alphabet := unionAlphabet(program, spec)
	notSpec, err := spec.Complement(alphabet)
	if err != nil {
		return nil, fmt.Errorf("verify: complementing %q: %v", spec.Name(), err)
	}
	bad := fa.Intersect(program, notSpec)
	sim := spec.Sim()
	var out []Violation
	for i, t := range bad.Enumerate(maxLen, limit) {
		t.ID = fmt.Sprintf("static#%d", i)
		at := sim.RejectsAt(t)
		if at < 0 {
			return nil, fmt.Errorf("verify: internal error: enumerated trace %q accepted by spec", t.Key())
		}
		out = append(out, Violation{Trace: t, At: at})
	}
	return out, nil
}

// Conforms reports whether every behaviour of the program model is
// accepted by the specification: L(program) ⊆ L(spec). Exact (not bounded):
// it checks emptiness of program ∩ ¬spec.
func Conforms(program, spec *fa.FA) (bool, error) {
	alphabet := unionAlphabet(program, spec)
	notSpec, err := spec.Complement(alphabet)
	if err != nil {
		return false, err
	}
	bad := fa.Intersect(program, notSpec).Trim()
	// After trimming, a nonempty language means some accepting state
	// remains reachable.
	return len(bad.AcceptStates()) == 0, nil
}

// StaticSet is Static collected into a trace set ready for a Cable
// session.
func StaticSet(program, spec *fa.FA, maxLen, limit int) (*trace.Set, []Violation, error) {
	violations, err := Static(program, spec, maxLen, limit)
	if err != nil {
		return nil, nil, err
	}
	set := &trace.Set{}
	for _, v := range violations {
		set.Add(v.Trace)
	}
	return set, violations, nil
}

func unionAlphabet(a, b *fa.FA) []event.Event {
	seen := map[string]event.Event{}
	for _, e := range a.Alphabet() {
		seen[e.String()] = e
	}
	for _, e := range b.Alphabet() {
		seen[e.String()] = e
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]event.Event, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
