//go:build race

package verify

// raceEnabled reports that the race detector is active; allocation-count
// tests are skipped under -race because instrumentation perturbs them.
const raceEnabled = true
