package verify

import (
	"strings"
	"testing"

	"repro/internal/specs"
	"repro/internal/trace"
)

func TestStaticFindsViolations(t *testing.T) {
	// The stdio program model includes leaky and crossed-close behaviours;
	// the correct spec must flag them, shortest first.
	stdio := specs.Stdio()
	program, err := specs.ProgramFA("stdio", stdio.Model)
	if err != nil {
		t.Fatal(err)
	}
	violations, err := Static(program, stdio.FA, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("no static violations found")
	}
	// Shortest-first ordering.
	for i := 1; i < len(violations); i++ {
		if violations[i].Trace.Len() < violations[i-1].Trace.Len() {
			t.Fatal("violations not shortest-first")
		}
	}
	// Every reported trace is producible by the program and rejected by
	// the spec.
	sawCross, sawLeak := false, false
	for _, v := range violations {
		if !program.Accepts(v.Trace) {
			t.Errorf("violation %q not a program behaviour", v.Trace.Key())
		}
		if stdio.FA.Accepts(v.Trace) {
			t.Errorf("violation %q accepted by the spec", v.Trace.Key())
		}
		key := v.Trace.Key()
		if strings.Contains(key, "popen") && strings.Contains(key, "fclose") {
			sawCross = true
		}
		if strings.HasSuffix(key, "fread(X)") {
			sawLeak = true
		}
	}
	if !sawCross || !sawLeak {
		t.Errorf("expected crossed-close and leak violations (cross=%v leak=%v)", sawCross, sawLeak)
	}
}

func TestStaticAgainstBuggySpec(t *testing.T) {
	// Against the buggy Figure 1 spec, the correct popen;pclose behaviour
	// shows up as a violation — the spec-gap case the debugging method
	// labels good.
	stdio := specs.Stdio()
	program, err := specs.ProgramFA("stdio", stdio.Model)
	if err != nil {
		t.Fatal(err)
	}
	set, violations, err := StaticSet(program, specs.FigureOneFA(), 8, 200)
	if err != nil {
		t.Fatal(err)
	}
	if set.Total() != len(violations) {
		t.Fatalf("set/violations mismatch: %d vs %d", set.Total(), len(violations))
	}
	want := trace.ParseEvents("", "X = popen()", "pclose(X)")
	if set.ClassOf(want) < 0 {
		t.Error("popen;pclose not among static violations of the buggy spec")
	}
}

func TestConforms(t *testing.T) {
	stdio := specs.Stdio()
	program, err := specs.ProgramFA("stdio", stdio.Model)
	if err != nil {
		t.Fatal(err)
	}
	// The full program model (with error behaviours) does not conform.
	ok, err := Conforms(program, stdio.FA)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("buggy program model reported conforming")
	}
	// The spec conforms to itself.
	ok, err = Conforms(stdio.FA, stdio.FA)
	if err != nil || !ok {
		t.Errorf("self-conformance: %v, %v", ok, err)
	}
	// Good-only program model conforms to the spec.
	goodOnly, err := specs.DeriveFA("good", stdio.Model)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = Conforms(goodOnly, stdio.FA)
	if err != nil || !ok {
		t.Errorf("good-only conformance: %v, %v", ok, err)
	}
}

func TestConformsAcrossCorpus(t *testing.T) {
	// For every corpus spec: the good-derived FA conforms, the full
	// program model does not (all models inject errors).
	for _, s := range specs.All() {
		program, err := specs.ProgramFA(s.Name, s.Model)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		ok, err := Conforms(program, s.FA)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if ok {
			t.Errorf("%s: erroneous program model conforms", s.Name)
		}
		violations, err := Static(program, s.FA, 10, 5)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(violations) == 0 {
			t.Errorf("%s: Conforms=false but no bounded violation found", s.Name)
		}
	}
}
