package cable

import (
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/trace"
)

// violationSet builds the violation traces of Section 2.1: correct
// popen/pclose pairs that the buggy spec rejects, plus genuinely erroneous
// leaks and mismatches.
func violationSet() *trace.Set {
	return trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fwrite(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = popen()", "fread(X)"),  // leak
		trace.ParseEvents("v4", "X = fopen()", "fread(X)"),  // leak
		trace.ParseEvents("v5", "X = fopen()", "pclose(X)"), // mismatch
		trace.ParseEvents("v6", "X = popen()", "pclose(X)"), // duplicate of v0
	)
}

// reference is a Figure-3-style FA recognizing all the violation traces: a
// one-state automaton with a loop per event.
func reference(set *trace.Set) *fa.FA {
	return fa.FromTraces(set.Alphabet())
}

func newTestSession(t *testing.T) *Session {
	t.Helper()
	set := violationSet()
	s, err := NewSession(set, reference(set))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionSetup(t *testing.T) {
	s := newTestSession(t)
	if s.NumTraces() != 6 { // v0 and v6 are identical
		t.Fatalf("NumTraces = %d, want 6", s.NumTraces())
	}
	if must(s.Multiplicity(0)) != 2 {
		t.Errorf("Multiplicity(v0) = %d, want 2", must(s.Multiplicity(0)))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Error("fresh session reports Done")
	}
	top := s.Lattice().Top()
	if must(s.ConceptState(top)) != StateUnlabeled {
		t.Errorf("top state = %v", must(s.ConceptState(top)))
	}
}

// popenConcept finds the concept of traces executing X = popen().
func popenConcept(t *testing.T, s *Session) int {
	t.Helper()
	for _, c := range s.Lattice().Concepts() {
		wantExtent := map[int]bool{}
		for i := 0; i < s.NumTraces(); i++ {
			if strings.Contains(must(s.Trace(i)).Key(), "popen()") &&
				!strings.Contains(must(s.Trace(i)).Key(), "fopen") {
				wantExtent[i] = true
			}
		}
		if c.Extent.Len() != len(wantExtent) {
			continue
		}
		match := true
		c.Extent.Range(func(o int) bool {
			if !wantExtent[o] {
				match = false
			}
			return match
		})
		if match {
			return c.ID
		}
	}
	t.Fatal("no popen concept found")
	return -1
}

func TestSection21Walkthrough(t *testing.T) {
	// Reproduce the Step 2a narrative: find the popen concept, label its
	// pclose sub-concept good, then label the remaining (leaky) traces bad.
	s := newTestSession(t)
	popen := popenConcept(t, s)

	// The popen concept mixes correct pclose traces with a leak; descend to
	// the child containing both popen and pclose transitions.
	var pcloseChild = -1
	for _, ch := range s.Lattice().Children(popen) {
		labels := map[string]bool{}
		for _, tr := range must(s.ShowTransitions(ch, SelectAll())) {
			labels[tr.Label.String()] = true
		}
		if labels["X = popen()"] && labels["pclose(X)"] {
			pcloseChild = ch
			break
		}
	}
	if pcloseChild < 0 {
		t.Fatal("no popen+pclose child concept")
	}
	if n := must(s.LabelTraces(pcloseChild, SelectAll(), Good)); n != 3 {
		t.Fatalf("labeled %d traces good, want 3", n)
	}
	if must(s.ConceptState(popen)) != StatePartlyLabeled {
		t.Errorf("popen concept state = %v after child labeling", must(s.ConceptState(popen)))
	}
	// Revisit the popen concept: its unlabeled traces are the leaks.
	rest := must(s.Select(popen, SelectUnlabeled()))
	if len(rest) != 1 || !strings.HasSuffix(must(s.Trace(rest[0])).Key(), "fread(X)") {
		t.Fatalf("unexpected unlabeled remainder: %v", rest)
	}
	must(s.LabelTraces(popen, SelectUnlabeled(), Bad))
	if must(s.ConceptState(popen)) != StateFullyLabeled {
		t.Errorf("popen concept not fully labeled")
	}

	// The fopen traces remain; label them via the top concept.
	top := s.Lattice().Top()
	must(s.LabelTraces(top, SelectUnlabeled(), Bad))
	if !s.Done() {
		t.Fatal("session not done after labeling everything")
	}

	// Step 2b/3: collect the good traces. There are three classes (v0/v6
	// collapse), four traces total.
	good := s.TracesWith(Good)
	if good.NumClasses() != 3 || good.Total() != 4 {
		t.Fatalf("good: %d classes, %d total", good.NumClasses(), good.Total())
	}
	bad := s.TracesWith(Bad)
	if bad.Total() != 3 {
		t.Fatalf("bad total = %d", bad.Total())
	}
}

func TestLabelReplacement(t *testing.T) {
	s := newTestSession(t)
	top := s.Lattice().Top()
	must(s.LabelTraces(top, SelectAll(), Good))
	// Relabel the subset carrying "good" as "bad": every trace flips; no
	// trace ever has two labels.
	n := must(s.LabelTraces(top, SelectLabel(Good), Bad))
	if n != s.NumTraces() {
		t.Fatalf("relabeled %d, want %d", n, s.NumTraces())
	}
	for i := 0; i < s.NumTraces(); i++ {
		if must(s.LabelOf(i)) != Bad {
			t.Fatalf("trace %d label = %q", i, must(s.LabelOf(i)))
		}
	}
	// Labeling with the same label changes nothing.
	if n := must(s.LabelTraces(top, SelectAll(), Bad)); n != 0 {
		t.Errorf("no-op labeling changed %d", n)
	}
}

func TestConceptStatesPropagate(t *testing.T) {
	// Labeling a descendant partly labels ancestors; labeling an ancestor
	// fully labels descendants.
	s := newTestSession(t)
	popen := popenConcept(t, s)
	top := s.Lattice().Top()
	must(s.LabelTraces(popen, SelectAll(), Good))
	if must(s.ConceptState(top)) != StatePartlyLabeled {
		t.Errorf("top not partly labeled after descendant labeling")
	}
	must(s.LabelTraces(top, SelectAll(), Bad))
	for _, c := range s.Lattice().Concepts() {
		if must(s.ConceptState(c.ID)) != StateFullyLabeled {
			t.Errorf("concept %d not fully labeled after top labeling", c.ID)
		}
	}
}

func TestShowFA(t *testing.T) {
	s := newTestSession(t)
	popen := popenConcept(t, s)
	f, err := s.ShowFA(popen, SelectAll())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Accepts(trace.ParseEvents("", "X = popen()", "pclose(X)")) {
		t.Error("summary FA rejects a concept trace")
	}
	if f.Accepts(trace.ParseEvents("", "X = fopen()", "pclose(X)")) {
		t.Error("summary FA accepts a trace outside the concept")
	}
}

func TestShowTransitionsNarrowing(t *testing.T) {
	s := newTestSession(t)
	popen := popenConcept(t, s)
	all := must(s.ShowTransitions(popen, SelectAll()))
	// Narrow to the eventually-good traces: shared transitions can only
	// grow (σ is antitone).
	var pcloseOnly Selector
	must(s.LabelTraces(popen, SelectAll(), Good))
	must(s.LabelTraces(popen, SelectUnlabeled(), Bad))
	pcloseOnly = SelectLabel(Good)
	narrowed := must(s.ShowTransitions(popen, pcloseOnly))
	if len(narrowed) < len(all) {
		t.Errorf("narrowed selection shares fewer transitions: %d < %d", len(narrowed), len(all))
	}
	if must(s.ShowTransitions(popen, SelectLabel("nonexistent"))) != nil {
		t.Error("empty selection should share no transitions")
	}
}

func TestShowTraces(t *testing.T) {
	s := newTestSession(t)
	top := s.Lattice().Top()
	if got := len(must(s.ShowTraces(top, SelectAll()))); got != 6 {
		t.Errorf("ShowTraces(top) = %d traces", got)
	}
}

func TestDescribeConcept(t *testing.T) {
	s := newTestSession(t)
	top := s.Lattice().Top()
	must(s.LabelTraces(top, SelectUnlabeled(), Good))
	desc := must(s.DescribeConcept(top))
	for _, want := range []string{"FullyLabeled", "trace class(es)", "good"} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeConcept missing %q in:\n%s", want, desc)
		}
	}
}

func TestFocus(t *testing.T) {
	s := newTestSession(t)
	top := s.Lattice().Top()
	// Focus the whole session on a seed-order FA for pclose: traces with
	// pclose separate from traces without it... pclose must occur, so focus
	// only applies to traces containing pclose; instead use unordered over
	// the popen-only alphabet to split by fread/fwrite usage.
	sub, err := s.Focus(top, SelectAll(), fa.FromTraces(violationSet().Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	ss := sub.Session()
	if ss.NumTraces() != s.NumTraces() {
		t.Fatalf("focus dropped traces: %d vs %d", ss.NumTraces(), s.NumTraces())
	}
	must(ss.LabelTraces(ss.Lattice().Top(), SelectAll(), Good))
	changed := must(sub.End())
	if changed != s.NumTraces() {
		t.Fatalf("End changed %d labels, want %d", changed, s.NumTraces())
	}
	if !s.Done() {
		t.Error("parent not done after focus merge")
	}
}

func TestFocusCarriesLabelsIn(t *testing.T) {
	s := newTestSession(t)
	top := s.Lattice().Top()
	popen := popenConcept(t, s)
	must(s.LabelTraces(popen, SelectAll(), Good))
	sub, err := s.Focus(top, SelectAll(), s.Ref())
	if err != nil {
		t.Fatal(err)
	}
	goodIn := 0
	for i := 0; i < sub.Session().NumTraces(); i++ {
		if must(sub.Session().LabelOf(i)) == Good {
			goodIn++
		}
	}
	if goodIn != len(must(s.Select(popen, SelectLabel(Good)))) {
		t.Errorf("focus carried %d good labels", goodIn)
	}
	// No changes in sub: End reports zero.
	if changed := must(sub.End()); changed != 0 {
		t.Errorf("End with no sub changes reported %d", changed)
	}
}

func TestFocusEmptySelection(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Focus(s.Lattice().Top(), SelectLabel("none"), s.Ref()); err == nil {
		t.Fatal("Focus on empty selection succeeded")
	}
}

func TestMultipleGoodLabels(t *testing.T) {
	// Section 2.2: distinct good labels (good fopen / good popen) keep the
	// relearning sets apart.
	s := newTestSession(t)
	for i := 0; i < s.NumTraces(); i++ {
		key := must(s.Trace(i)).Key()
		switch {
		case strings.Contains(key, "popen()") && strings.Contains(key, "pclose"):
			s.labels[i] = Label("good popen")
		case strings.Contains(key, "fopen"):
			s.labels[i] = Label("good fopen")
		default:
			s.labels[i] = Bad
		}
	}
	used := s.UsedLabels()
	if len(used) != 3 {
		t.Fatalf("UsedLabels = %v", used)
	}
	if s.TracesWith("good popen").Total() != 4 {
		t.Errorf("good popen total = %d", s.TracesWith("good popen").Total())
	}
	if s.TracesWith("good fopen").Total() != 2 {
		t.Errorf("good fopen total = %d", s.TracesWith("good fopen").Total())
	}
}

func TestStateString(t *testing.T) {
	if !strings.Contains(StateUnlabeled.String(), "green") ||
		!strings.Contains(StatePartlyLabeled.String(), "yellow") ||
		!strings.Contains(StateFullyLabeled.String(), "red") {
		t.Error("state colors wrong")
	}
}

// must unwraps a (value, error) pair, panicking on error; these tests only
// use IDs the checked accessors accept.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
