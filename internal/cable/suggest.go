package cable

import (
	"fmt"

	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/trace"
)

// This file automates Section 4.1's Focus-template selection. When a
// concept is mixed — the user has labeled some of its traces good and some
// bad, but further labeling through this lattice cannot separate the rest —
// the escape hatch is a Focus session with a different reference FA. The
// paper's experiments drew those FAs from three templates (unordered, name
// projection, seed order); SuggestFocus tries each against the labels
// assigned so far and returns the first that separates them.

// Suggestion is a Focus recommendation.
type Suggestion struct {
	// Template names the winning template: "unordered", "project <name>",
	// or "seed <event>".
	Template string
	// Ref is the reference FA to focus with.
	Ref *fa.FA
}

// SuggestFocus examines the concept's traces and the labels they already
// carry, and proposes a Focus template whose induced sub-lattice separates
// the differently-labeled traces (is well-formed for the partial labeling,
// extended to unlabeled traces by ignoring them). It tries the paper's
// templates in order of induced lattice size: unordered, then a name
// projection per mentioned name, then a seed order per alphabet event. It
// returns an error if the concept's labeled traces do not disagree (no
// split needed) or if no template separates them.
func (s *Session) SuggestFocus(id int) (Suggestion, error) {
	objs, err := s.Select(id, SelectAll())
	if err != nil {
		return Suggestion{}, err
	}
	var traces []trace.Trace
	var labels []Label
	distinct := map[Label]bool{}
	for _, o := range objs {
		traces = append(traces, s.traces[o])
		labels = append(labels, s.labels[o])
		if s.labels[o] != Unlabeled {
			distinct[s.labels[o]] = true
		}
	}
	if len(distinct) < 2 {
		return Suggestion{}, fmt.Errorf("cable: concept %d is not mixed under the current labels", id)
	}
	alphabet := trace.NewSet(traces...).Alphabet()

	var candidates []Suggestion
	candidates = append(candidates, Suggestion{Template: "unordered", Ref: fa.Unordered(alphabet)})
	for _, name := range namesOf(traces) {
		candidates = append(candidates, Suggestion{
			Template: "project " + name,
			Ref:      fa.NameProjection(alphabet, name),
		})
	}
	for _, e := range alphabet {
		candidates = append(candidates, Suggestion{
			Template: "seed " + e.String(),
			Ref:      fa.SeedOrder(alphabet, e),
		})
	}
	for _, cand := range candidates {
		if separates(cand.Ref, traces, labels) {
			return cand, nil
		}
	}
	return Suggestion{}, fmt.Errorf("cable: no template separates the labels of concept %d; label by hand or supply a custom FA", id)
}

// separates reports whether, under the candidate reference FA, no two
// traces with different (non-empty) labels share an executed-transition
// row's closure — precisely: the candidate lattice restricted to labeled
// traces is well-formed. We check the sufficient, cheap condition that
// differently-labeled traces never have identical executed-transition
// sets, and then verify full separability by building the (small) lattice
// and checking that every concept's labeled traces can be peeled: we reuse
// the recursive well-formedness on the labeled subset with unlabeled
// traces removed.
func separates(ref *fa.FA, traces []trace.Trace, labels []Label) bool {
	var labeled []trace.Trace
	var labeledLabels []Label
	for i, t := range traces {
		if labels[i] != Unlabeled {
			labeled = append(labeled, t)
			labeledLabels = append(labeledLabels, labels[i])
		}
	}
	// The template must accept every trace (seed-order templates reject
	// traces lacking the seed). Compile the candidate once; the same plan
	// is then reused by the lattice build below.
	sim := ref.Sim()
	for _, t := range traces {
		if !sim.Accepts(t) {
			return false
		}
	}
	lattice, err := concept.BuildFromTraces(labeled, ref)
	if err != nil {
		return false
	}
	return wellFormedFor(lattice, labeledLabels)
}

// wellFormedFor is the Section 4.3 check, inlined here to avoid an import
// cycle with internal/wellformed (which imports this package for Label).
func wellFormedFor(l *concept.Lattice, labels []Label) bool {
	memo := make([]int8, l.Len())
	var rec func(id int) bool
	rec = func(id int) bool {
		switch memo[id] {
		case 1:
			return true
		case 2:
			return false
		}
		uniformAll := true
		first, seen := Unlabeled, false
		l.Concept(id).Extent.Range(func(o int) bool {
			if !seen {
				first, seen = labels[o], true
				return true
			}
			if labels[o] != first {
				uniformAll = false
				return false
			}
			return true
		})
		if uniformAll {
			memo[id] = 1
			return true
		}
		ok := true
		for _, ch := range l.Children(id) {
			if !rec(ch) {
				ok = false
			}
		}
		if ok {
			proper := l.Concept(id).Extent.Clone()
			for _, ch := range l.Children(id) {
				proper.DifferenceWith(l.Concept(ch).Extent)
			}
			first, seen = Unlabeled, false
			proper.Range(func(o int) bool {
				if !seen {
					first, seen = labels[o], true
					return true
				}
				if labels[o] != first {
					ok = false
					return false
				}
				return true
			})
		}
		if ok {
			memo[id] = 1
		} else {
			memo[id] = 2
		}
		return ok
	}
	for _, c := range l.Concepts() {
		if !rec(c.ID) {
			return false
		}
	}
	return true
}

func namesOf(traces []trace.Trace) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range traces {
		for _, n := range t.Names() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}
