package cable

import (
	"context"

	"repro/internal/concept"
	"repro/internal/learn"
	"repro/internal/obs"
)

// Option configures NewSession (and Session.Focus, whose sub-session
// inherits the parent's configuration unless overridden). The options
// replace the former post-hoc SetLearner mutator: a Session's
// configuration is fixed at construction, which is what makes sessions
// safe to share behind a per-session lock in a concurrent service.
type Option func(*config)

type config struct {
	ctx     context.Context
	learner learn.Learner
	metrics *obs.Metrics
	workers int
	lattice *concept.Lattice
}

func buildConfig(opts []Option) config {
	cfg := config{
		ctx:     context.Background(),
		learner: learn.DefaultLearner,
		metrics: obs.Default(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithContext bounds the session construction: the lattice build checks
// ctx between work items, so a timed-out or disconnected remote request
// aborts promptly with ctx.Err() instead of completing a build nobody will
// read. The context governs construction only; it is not retained by the
// session.
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

// WithLearner sets the FA learner used by Show FA summaries; the default
// is learn.DefaultLearner.
func WithLearner(l learn.Learner) Option {
	return func(c *config) { c.learner = l }
}

// WithObs directs the session's instrumentation (trace-class and concept
// gauges, build spans) to the given registry instead of the process
// default. A nil registry disables instrumentation for this session.
func WithObs(m *obs.Metrics) Option {
	return func(c *config) { c.metrics = m }
}

// WithWorkers bounds the parallelism of the per-trace FA simulations
// during lattice construction; 0 (the default) uses GOMAXPROCS, 1 forces a
// serial build. A service hosting many concurrent builds uses this to stop
// one session from monopolizing the machine.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithLattice supplies a pre-built lattice instead of building one, so a
// cache of lattices keyed by workload can skip the expensive construction.
// The lattice must have been built from exactly this trace set's class
// representatives (same classes, same order) and the same reference FA;
// NewSession verifies the object count and rejects a mismatched lattice.
// A lattice shared this way must be treated as copy-on-write: before the
// first mutating call (Session.AddTraceCtx), the owner detaches its private
// copy with Session.DetachLattice, so the cache keeps serving the pristine
// lattice to later sessions of the same corpus.
func WithLattice(l *concept.Lattice) Option {
	return func(c *config) { c.lattice = l }
}
