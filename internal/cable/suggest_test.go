package cable

import (
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/trace"
)

// fontSession builds a session over order-sensitive XSetFont-style traces
// clustered with the unordered FA, which mixes the good (font before draw)
// and bad (font after draw) orders.
func fontSession(t *testing.T) *Session {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("g1", "X = XCreateGC()", "XSetFont(X)", "XDrawString(X)", "XFreeGC(X)"),
		trace.ParseEvents("g2", "X = XCreateGC()", "XSetFont(X)", "XDrawString(X)", "XDrawString(X)", "XFreeGC(X)"),
		trace.ParseEvents("b1", "X = XCreateGC()", "XDrawString(X)", "XSetFont(X)", "XFreeGC(X)"),
	)
	s, err := NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuggestFocusSeparatesOrders(t *testing.T) {
	s := fontSession(t)
	// The user labels one good and one bad trace; they share all events,
	// so the unordered lattice cannot separate them.
	s.LabelTrace(0, Good)
	s.LabelTrace(2, Bad)
	// Find the concept containing both (they have identical event
	// supports, so γ(g1) contains b1 too).
	id := s.Lattice().ObjectConcept(0)
	if !s.Lattice().Concept(id).Extent.Has(2) {
		t.Fatalf("fixture mismatch: g1 and b1 not in one concept")
	}
	sug, err := s.SuggestFocus(id)
	if err != nil {
		t.Fatal(err)
	}
	// Order matters here, so the suggestion must be order-aware (a seed
	// template), and focusing with it must yield a session where the
	// labeled traces separate.
	if !strings.HasPrefix(sug.Template, "seed ") {
		t.Errorf("suggested %q, expected a seed-order template", sug.Template)
	}
	fc, err := s.Focus(id, SelectAll(), sug.Ref)
	if err != nil {
		t.Fatal(err)
	}
	sub := fc.Session()
	// In the sub-lattice, g1 and b1 must have different object concepts.
	var gi, bi int = -1, -1
	for i := 0; i < sub.NumTraces(); i++ {
		switch must(sub.Trace(i)).ID {
		case "g1":
			gi = i
		case "b1":
			bi = i
		}
	}
	if gi < 0 || bi < 0 {
		t.Fatal("focused session lost traces")
	}
	if sub.Lattice().ObjectConcept(gi) == sub.Lattice().ObjectConcept(bi) {
		t.Error("suggested template does not separate the labeled traces")
	}
}

func TestSuggestFocusUnorderedSufficesWhenEventsDiffer(t *testing.T) {
	// Good and bad differ in which events occur: the cheapest template
	// (unordered) already separates, and must be suggested first.
	set := trace.NewSet(
		trace.ParseEvents("g", "X = open()", "close(X)"),
		trace.ParseEvents("b", "X = open()"),
	)
	// A one-path reference merging everything into the same row would be
	// needed to make this concept mixed; with FromTraces the traces already
	// differ, but SuggestFocus only requires the labels to disagree within
	// the chosen concept, so use the top concept.
	s, err := NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	s.LabelTrace(0, Good)
	s.LabelTrace(1, Bad)
	sug, err := s.SuggestFocus(s.Lattice().Top())
	if err != nil {
		t.Fatal(err)
	}
	if sug.Template != "unordered" {
		t.Errorf("suggested %q, want unordered", sug.Template)
	}
}

func TestSuggestFocusNotMixed(t *testing.T) {
	s := fontSession(t)
	if _, err := s.SuggestFocus(s.Lattice().Top()); err == nil {
		t.Error("SuggestFocus succeeded on an unlabeled concept")
	}
	s.LabelTrace(0, Good)
	if _, err := s.SuggestFocus(s.Lattice().Top()); err == nil {
		t.Error("SuggestFocus succeeded with a single label in use")
	}
}

func TestSuggestFocusHopeless(t *testing.T) {
	// Identical traces cannot be separated by any template; suggesting
	// must fail... but identical traces share a class, so construct the
	// even/odd foo case instead: same event support, orders
	// indistinguishable by any of the three templates.
	set := trace.NewSet(
		trace.ParseEvents("e2", "foo()", "foo()"),
		trace.ParseEvents("o3", "foo()", "foo()", "foo()"),
	)
	s, err := NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	s.LabelTrace(0, Good)
	s.LabelTrace(1, Bad)
	if _, err := s.SuggestFocus(s.Lattice().Top()); err == nil {
		t.Error("SuggestFocus claimed to separate foo-count parity")
	}
}
