package cable

import (
	"fmt"
	"strings"

	"repro/internal/fa"
	"repro/internal/trace"
)

// This file implements Cable's summary views (Section 4.1): Show FA, Show
// transitions, and Show traces, each over a selectable subset of a
// concept's traces.

// ShowFA infers an FA from the selected traces of the concept with the
// session's learner — "the most frequently used summary because the FA is
// often short and clear". With SelectLabel on the top concept after all
// labeling is done, it summarizes an entire label class. ErrBadConcept
// reports an out-of-range concept ID.
func (s *Session) ShowFA(id int, sel Selector) (*fa.FA, error) {
	objs, err := s.Select(id, sel)
	if err != nil {
		return nil, err
	}
	traces := make([]trace.Trace, 0, len(objs))
	for _, o := range objs {
		// Learn from the multiset so frequencies steer the learner the way
		// they steered the miner.
		c := s.setClass(o)
		for j := 0; j < c.Count; j++ {
			traces = append(traces, c.Rep)
		}
	}
	res, err := s.learner.Learn(fmt.Sprintf("concept-%d", id), traces)
	if err != nil {
		return nil, err
	}
	return res.FA, nil
}

func (s *Session) setClass(o int) trace.Class { return s.set.Class(o) }

// ShowTransitions returns the reference-FA transitions executed by every
// selected trace of the concept — for SelectAll this is exactly the
// concept's intent; for narrower selections it is σ of the selection, which
// can only grow. "The user often knows that the label for a trace depends
// on whether the trace executes a certain set of transitions."
// ErrBadConcept reports an out-of-range concept ID.
func (s *Session) ShowTransitions(id int, sel Selector) ([]fa.Transition, error) {
	if !s.ValidConcept(id) {
		return nil, s.badConcept(id)
	}
	return s.sharedTransitions(id, sel), nil
}

// sharedTransitions is ShowTransitions over a validated concept ID.
func (s *Session) sharedTransitions(id int, sel Selector) []fa.Transition {
	ext := s.extentOf(id, sel)
	if ext.Empty() {
		return nil
	}
	shared := s.lattice.Context().Sigma(ext)
	out := make([]fa.Transition, 0, shared.Len())
	shared.Range(func(a int) bool {
		out = append(out, s.ref.Transition(a))
		return true
	})
	return out
}

// ShowTraces returns the selected traces themselves — "not used very often
// because it usually generates more output than the user can understand".
// ErrBadConcept reports an out-of-range concept ID.
func (s *Session) ShowTraces(id int, sel Selector) ([]trace.Trace, error) {
	objs, err := s.Select(id, sel)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Trace, len(objs))
	for i, o := range objs {
		out[i] = s.traces[o]
	}
	return out, nil
}

// DescribeConcept renders a one-screen summary of a concept: state, sizes,
// intent transitions, and label census. The REPL's "info" command.
// ErrBadConcept reports an out-of-range concept ID.
func (s *Session) DescribeConcept(id int) (string, error) {
	if !s.ValidConcept(id) {
		return "", s.badConcept(id)
	}
	var b strings.Builder
	c := s.lattice.Concept(id)
	fmt.Fprintf(&b, "concept c%d: %s\n", id, s.state(id))
	fmt.Fprintf(&b, "  %d trace class(es), %d total trace(s), similarity %d\n",
		c.Extent.Len(), s.totalCount(id), c.Intent.Len())
	census := map[Label]int{}
	c.Extent.Range(func(o int) bool {
		census[s.labels[o]]++
		return true
	})
	if n := census[Unlabeled]; n > 0 {
		fmt.Fprintf(&b, "  unlabeled: %d\n", n)
	}
	for _, l := range s.UsedLabels() {
		if n := census[l]; n > 0 {
			fmt.Fprintf(&b, "  %q: %d\n", string(l), n)
		}
	}
	fmt.Fprintf(&b, "  shared transitions:\n")
	for _, t := range s.sharedTransitions(id, SelectAll()) {
		fmt.Fprintf(&b, "    %s\n", t)
	}
	fmt.Fprintf(&b, "  parents: %v  children: %v\n", s.lattice.Parents(id), s.lattice.Children(id))
	return b.String(), nil
}

// totalCount sums the multiplicities of a validated concept's classes.
func (s *Session) totalCount(id int) int {
	total := 0
	s.lattice.Concept(id).Extent.Range(func(o int) bool {
		total += s.set.Class(o).Count
		return true
	})
	return total
}
