package cable_test

import (
	"fmt"

	"repro/internal/cable"
	"repro/internal/fa"
	"repro/internal/trace"
)

// Example drives a labeling session the way Section 2.1's author does:
// inspect a concept's shared transitions, label the matching traces good,
// sweep the remainder bad, and export the good traces.
func Example() {
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fread(X)"), // leak
	)
	session, err := cable.NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		panic(err)
	}

	// Find the concept whose traces all execute pclose and label it good.
	for _, id := range session.Lattice().TopDownOrder() {
		for _, t := range must(session.ShowTransitions(id, cable.SelectUnlabeled())) {
			if t.Label.Op == "pclose" {
				session.LabelTraces(id, cable.SelectUnlabeled(), cable.Good)
			}
		}
	}
	// Everything left violates the protocol.
	session.LabelTraces(session.Lattice().Top(), cable.SelectUnlabeled(), cable.Bad)

	fmt.Println("done:", session.Done())
	fmt.Println("good classes:", session.TracesWith(cable.Good).NumClasses())
	fmt.Println("bad classes:", session.TracesWith(cable.Bad).NumClasses())
	// Output:
	// done: true
	// good classes: 2
	// bad classes: 1
}

// ExampleSession_Focus re-clusters a concept with a Focus template and
// merges the labels back (Section 4.1).
func ExampleSession_Focus() {
	set := trace.NewSet(
		trace.ParseEvents("good", "X = XCreateGC()", "XSetFont(X)", "XDrawString(X)", "XFreeGC(X)"),
		trace.ParseEvents("bad", "X = XCreateGC()", "XDrawString(X)", "XSetFont(X)", "XFreeGC(X)"),
	)
	// Under an unordered reference the two traces are indistinguishable.
	session, err := cable.NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		panic(err)
	}
	session.LabelTrace(0, cable.Good)
	session.LabelTrace(1, cable.Bad)

	// Ask Cable for a template that separates the labels.
	sug, err := session.SuggestFocus(session.Lattice().Top())
	if err != nil {
		panic(err)
	}
	fmt.Println("suggested:", sug.Template)
	// Output:
	// suggested: seed XDrawString(X)
}

// must unwraps a (value, error) pair, panicking on error; these tests only
// use IDs the checked accessors accept.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
