package cable

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
	"repro/internal/scanio"
)

// ApplyLabels reads "<label>\t<trace key>" lines (blank lines and #
// comments ignored) and labels the session's matching trace classes,
// returning how many applied. It is the parsing half of label persistence,
// shared by the REPL's load command and by workspace files.
func ApplyLabels(s *Session, in io.Reader) (int, error) {
	byKey := map[string]int{}
	for i, t := range s.Representatives() {
		byKey[t.Key()] = i
	}
	sc := scanio.NewScanner(in)
	applied, lineno := 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return applied, scanio.LineError("cable: labels", lineno, fmt.Errorf("want \"<label>\\t<trace>\""))
		}
		if i, ok := byKey[parts[1]]; ok {
			s.LabelTrace(i, Label(parts[0]))
			applied++
		}
	}
	obs.Count("cable.labels.applied", int64(applied))
	return applied, scanio.LineError("cable: labels", lineno+1, sc.Err())
}
