// Package cable implements the specification-debugging sessions of Section
// 4: a concept lattice over traces, labeling of whole concepts at once,
// summary views, and Focus sub-sessions.
//
// A Session owns the representative traces (one per class of identical
// traces), the concept lattice induced by a reference FA, and a label per
// trace. Labels partition traces into erroneous ("bad") and correct
// ("good") sets; several distinct good labels may be used to fight
// overgeneralization (Section 2.2). Cable tracks which traces are labeled
// and exposes each concept's state — Unlabeled (green), PartlyLabeled
// (yellow), FullyLabeled (red) — so a user or strategy can see where work
// remains.
package cable

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Sentinel errors for lookups with untrusted IDs. Methods taking a concept
// ID or a trace-class index validate it and return an error wrapping one of
// these instead of panicking, so a service can map them to 404 responses
// with errors.Is.
var (
	// ErrBadConcept reports a concept ID outside the session's lattice.
	ErrBadConcept = errors.New("cable: no such concept")
	// ErrBadTrace reports a trace-class index outside the session's range.
	ErrBadTrace = errors.New("cable: no such trace class")
)

// Label classifies a trace. The empty label means "not yet labeled".
type Label string

// Conventional labels. Any non-empty string is allowed; Good* variants
// (e.g. "good fopen", "good popen") support split relearning.
const (
	Unlabeled Label = ""
	Good      Label = "good"
	Bad       Label = "bad"
	// Mixed marks traces of a concept that is not well-formed for the
	// desired labeling (Section 4.3); such traces are handled by hand or in
	// a Focus session with a different FA.
	Mixed Label = "mixed"
)

// State is a concept's labeling state.
type State int

const (
	// StateUnlabeled: no trace in the concept is labeled (shown green).
	StateUnlabeled State = iota
	// StatePartlyLabeled: some traces labeled, some not (shown yellow).
	StatePartlyLabeled
	// StateFullyLabeled: every trace labeled; empty concepts are always
	// fully labeled (shown red).
	StateFullyLabeled
)

// String returns the paper's name and display color for the state.
func (s State) String() string {
	switch s {
	case StateUnlabeled:
		return "Unlabeled(green)"
	case StatePartlyLabeled:
		return "PartlyLabeled(yellow)"
	default:
		return "FullyLabeled(red)"
	}
}

// Session is a Cable debugging session. Its configuration (learner,
// worker bound, metrics registry) is fixed at construction via Options;
// only the labels mutate afterwards, so guarding a session with one mutex
// makes it safe for concurrent clients.
type Session struct {
	set     *trace.Set
	traces  []trace.Trace // representatives; object i of the context
	ref     *fa.FA
	lattice *concept.Lattice
	labels  []Label
	learner learn.Learner
	workers int
	metrics *obs.Metrics
}

// NewSession builds a session: the context objects are the set's class
// representatives, the attributes the reference FA's transitions. The
// reference FA must accept every trace. Options configure the build
// (WithContext, WithWorkers, WithLattice) and the session itself
// (WithLearner, WithObs); the zero option set reproduces the historical
// behavior exactly.
func NewSession(set *trace.Set, ref *fa.FA, opts ...Option) (*Session, error) {
	cfg := buildConfig(opts)
	sp := cfg.metrics.StartSpan("cable.session")
	defer sp.End()
	reps := set.Representatives()
	cfg.metrics.Gauge("cable.session.trace_classes").Set(int64(len(reps)))
	lattice := cfg.lattice
	if lattice != nil {
		if got := lattice.Context().NumObjects(); got != len(reps) {
			return nil, fmt.Errorf("cable: supplied lattice has %d objects for %d trace classes", got, len(reps))
		}
	} else {
		var err error
		lattice, err = concept.BuildFromTracesCtx(cfg.ctx, reps, ref, cfg.workers)
		if err != nil {
			return nil, err
		}
	}
	cfg.metrics.Gauge("cable.session.concepts").Set(int64(lattice.Len()))
	return &Session{
		set:     set,
		traces:  reps,
		ref:     ref,
		lattice: lattice,
		labels:  make([]Label, len(reps)),
		learner: cfg.learner,
		workers: cfg.workers,
		metrics: cfg.metrics,
	}, nil
}

// options reconstructs the session's configuration, so Focus sub-sessions
// inherit it.
func (s *Session) options() []Option {
	return []Option{WithLearner(s.learner), WithWorkers(s.workers), WithObs(s.metrics)}
}

// Lattice returns the session's concept lattice.
func (s *Session) Lattice() *concept.Lattice { return s.lattice }

// Set returns the underlying trace multiset (shared; do not mutate).
func (s *Session) Set() *trace.Set { return s.set }

// Ref returns the reference FA defining trace similarity.
func (s *Session) Ref() *fa.FA { return s.ref }

// NumTraces returns the number of trace classes (context objects).
func (s *Session) NumTraces() int { return len(s.traces) }

// ValidConcept reports whether id names a concept of the session's lattice.
func (s *Session) ValidConcept(id int) bool { return s.lattice.Valid(id) }

// ValidTrace reports whether i names a trace class of the session.
func (s *Session) ValidTrace(i int) bool { return i >= 0 && i < len(s.traces) }

// badConcept wraps ErrBadConcept with the offending ID and the valid range.
func (s *Session) badConcept(id int) error {
	return fmt.Errorf("%w: %d (0..%d)", ErrBadConcept, id, s.lattice.Len()-1)
}

// badTrace wraps ErrBadTrace with the offending index and the valid range.
func (s *Session) badTrace(i int) error {
	return fmt.Errorf("%w: %d (0..%d)", ErrBadTrace, i, len(s.traces)-1)
}

// Representatives returns the representative trace of every class, indexed
// by object. The slice is shared; do not mutate.
func (s *Session) Representatives() []trace.Trace { return s.traces }

// Trace returns the representative trace of object i, or ErrBadTrace when
// i is out of range.
func (s *Session) Trace(i int) (trace.Trace, error) {
	if !s.ValidTrace(i) {
		return trace.Trace{}, s.badTrace(i)
	}
	return s.traces[i], nil
}

// Multiplicity returns how many identical traces object i represents, or
// ErrBadTrace when i is out of range.
func (s *Session) Multiplicity(i int) (int, error) {
	if !s.ValidTrace(i) {
		return 0, s.badTrace(i)
	}
	return s.set.Class(i).Count, nil
}

// LabelOf returns the label of object i, or ErrBadTrace when i is out of
// range.
func (s *Session) LabelOf(i int) (Label, error) {
	if !s.ValidTrace(i) {
		return Unlabeled, s.badTrace(i)
	}
	return s.labels[i], nil
}

// Labels returns a copy of the current labeling.
func (s *Session) Labels() []Label { return append([]Label(nil), s.labels...) }

// Done reports whether every trace is labeled.
func (s *Session) Done() bool {
	for _, l := range s.labels {
		if l == Unlabeled {
			return false
		}
	}
	return true
}

// ConceptState returns the labeling state of a concept, or ErrBadConcept
// when id is out of range.
func (s *Session) ConceptState(id int) (State, error) {
	if !s.ValidConcept(id) {
		return StateUnlabeled, s.badConcept(id)
	}
	return s.state(id), nil
}

// state computes the labeling state of a validated concept ID.
func (s *Session) state(id int) State {
	labeled, unlabeled := 0, 0
	s.lattice.Concept(id).Extent.Range(func(o int) bool {
		if s.labels[o] == Unlabeled {
			unlabeled++
		} else {
			labeled++
		}
		return true
	})
	switch {
	case unlabeled == 0:
		return StateFullyLabeled
	case labeled == 0:
		return StateUnlabeled
	default:
		return StatePartlyLabeled
	}
}

// Selector chooses which of a concept's traces an operation applies to,
// mirroring Cable's prompts: all traces, only unlabeled traces, or only the
// traces carrying a given label.
type Selector struct {
	mode  int // 0 = all, 1 = unlabeled, 2 = labeled-with
	label Label
}

// SelectAll selects every trace of the concept.
func SelectAll() Selector { return Selector{mode: 0} }

// SelectUnlabeled selects only the concept's unlabeled traces.
func SelectUnlabeled() Selector { return Selector{mode: 1} }

// SelectLabel selects only the traces carrying the given label.
func SelectLabel(l Label) Selector { return Selector{mode: 2, label: l} }

func (sel Selector) matches(l Label) bool {
	switch sel.mode {
	case 0:
		return true
	case 1:
		return l == Unlabeled
	default:
		return l == sel.label
	}
}

// Select returns the object indices of the concept's traces matched by the
// selector, in increasing order, or ErrBadConcept when id is out of range.
func (s *Session) Select(id int, sel Selector) ([]int, error) {
	if !s.ValidConcept(id) {
		return nil, s.badConcept(id)
	}
	return s.selectObjs(id, sel), nil
}

// selectObjs is Select over a validated concept ID.
func (s *Session) selectObjs(id int, sel Selector) []int {
	var out []int
	s.lattice.Concept(id).Extent.Range(func(o int) bool {
		if sel.matches(s.labels[o]) {
			out = append(out, o)
		}
		return true
	})
	return out
}

// LabelTrace assigns a label to a single trace class directly, bypassing
// the concept-based UI; ErrBadTrace reports an out-of-range index.
// Interactive debugging goes through LabelTraces; this entry point exists
// for tools that replay a known labeling (ground truth in experiments,
// saved labelings in the REPL).
func (s *Session) LabelTrace(i int, label Label) error {
	if !s.ValidTrace(i) {
		return s.badTrace(i)
	}
	s.labels[i] = label
	return nil
}

// LabelTraces implements the "Label traces" command: give every selected
// trace of the concept the label, replacing any existing labels (no trace
// ever carries more than one label). It returns the number of traces whose
// label changed, or ErrBadConcept when id is out of range.
func (s *Session) LabelTraces(id int, sel Selector, label Label) (int, error) {
	if !s.ValidConcept(id) {
		return 0, s.badConcept(id)
	}
	changed := 0
	for _, o := range s.selectObjs(id, sel) {
		if s.labels[o] != label {
			s.labels[o] = label
			changed++
		}
	}
	return changed, nil
}

// AddTraceCtx appends a trace to the session without rebuilding it. A trace
// identical to an existing class only bumps that class's multiplicity; a
// novel trace becomes a new context object, the lattice is maintained
// incrementally (concept.AddTraceCtx), and the new class starts Unlabeled.
// It returns the trace's class index and whether the class is new.
//
// The session's lattice is mutated in place, so a session built over a
// shared lattice (WithLattice) must call DetachLattice first. On error —
// the reference FA rejects the trace, or cc is done — the session is
// unchanged.
func (s *Session) AddTraceCtx(cc context.Context, t trace.Trace) (class int, isNew bool, err error) {
	if i := s.set.ClassOf(t); i >= 0 {
		class, _ = s.set.Add(t)
		return class, false, nil
	}
	if err := s.lattice.AddTraceCtx(cc, t, s.ref); err != nil {
		return 0, false, err
	}
	class, _ = s.set.Add(t)
	s.traces = append(s.traces, s.set.Class(class).Rep)
	s.labels = append(s.labels, Unlabeled)
	s.metrics.Gauge("cable.session.trace_classes").Set(int64(len(s.traces)))
	s.metrics.Gauge("cable.session.concepts").Set(int64(s.lattice.Len()))
	return class, true, nil
}

// DetachLattice replaces the session's lattice with a private deep copy.
// Call it before the first AddTraceCtx on a session whose lattice is shared
// (supplied via WithLattice from a cache); afterwards mutations touch only
// this session. Detaching an already-private lattice is harmless but wastes
// a copy, so callers track sharing themselves.
func (s *Session) DetachLattice() {
	s.lattice = s.lattice.Clone()
}

// TracesWith collects all traces carrying the label into a set, with the
// multiplicities of the underlying classes — the input to Step 3 (fixing
// the spec or rerunning the miner's back end on the good traces).
func (s *Session) TracesWith(label Label) *trace.Set {
	out := &trace.Set{}
	for i, l := range s.labels {
		if l != label {
			continue
		}
		c := s.set.Class(i)
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			out.Add(t)
		}
	}
	return out
}

// UsedLabels returns the distinct non-empty labels in use, sorted.
func (s *Session) UsedLabels() []Label {
	seen := map[Label]bool{}
	for _, l := range s.labels {
		if l != Unlabeled {
			seen[l] = true
		}
	}
	out := make([]Label, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// extentOf returns the extent bitset of selected objects of a validated
// concept ID.
func (s *Session) extentOf(id int, sel Selector) *bitset.Set {
	out := bitset.New(len(s.traces))
	for _, o := range s.selectObjs(id, sel) {
		out.Add(o)
	}
	return out
}

// Validate panics if internal invariants are violated; used by tests.
func (s *Session) Validate() error {
	if len(s.labels) != len(s.traces) {
		return fmt.Errorf("cable: %d labels for %d traces", len(s.labels), len(s.traces))
	}
	return nil
}
