package cable

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/trace"
)

// Focus starts a sub-session on a single concept's selected traces,
// clustered with a different reference FA (Section 4.1): "Cable starts a
// sub-session, which focuses on a single concept's traces... The user can
// end a focused session at any time, at which time any labels that he
// assigned are automatically merged into the original session."
//
// The three FA templates the paper's experiments used for focusing are
// fa.Unordered, fa.NameProjection, and fa.SeedOrder.
type Focus struct {
	parent *Session
	sub    *Session
	objMap []int // sub object index -> parent object index
}

// Focus creates a focused sub-session over the selected traces of the
// concept, clustered by ref. Labels already assigned in the parent are
// carried into the sub-session.
func (s *Session) Focus(id int, sel Selector, ref *fa.FA) (*Focus, error) {
	objs := s.Select(id, sel)
	if len(objs) == 0 {
		return nil, fmt.Errorf("cable: focus on empty selection of concept %d", id)
	}
	sub := &trace.Set{}
	for _, o := range objs {
		c := s.set.Class(o)
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			sub.Add(t)
		}
	}
	subSession, err := NewSession(sub, ref)
	if err != nil {
		return nil, err
	}
	subSession.SetLearner(s.learner)
	// Class order in sub matches first-appearance order over objs, which is
	// the parent's increasing object order, so class i of sub corresponds
	// to objs[i].
	if subSession.NumTraces() != len(objs) {
		return nil, fmt.Errorf("cable: focus class mismatch: %d vs %d", subSession.NumTraces(), len(objs))
	}
	for i, o := range objs {
		subSession.labels[i] = s.labels[o]
	}
	return &Focus{parent: s, sub: subSession, objMap: objs}, nil
}

// Session returns the focused sub-session; label and summarize it like any
// other session.
func (f *Focus) Session() *Session { return f.sub }

// End merges the sub-session's labels back into the parent and returns the
// number of parent traces whose label changed.
func (f *Focus) End() int {
	changed := 0
	for i, o := range f.objMap {
		if l := f.sub.labels[i]; l != f.parent.labels[o] {
			f.parent.labels[o] = l
			changed++
		}
	}
	return changed
}
