package cable

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/trace"
)

// Focus starts a sub-session on a single concept's selected traces,
// clustered with a different reference FA (Section 4.1): "Cable starts a
// sub-session, which focuses on a single concept's traces... The user can
// end a focused session at any time, at which time any labels that he
// assigned are automatically merged into the original session."
//
// The three FA templates the paper's experiments used for focusing are
// fa.Unordered, fa.NameProjection, and fa.SeedOrder.
type Focus struct {
	parent *Session
	sub    *Session
	objMap []int // sub object index -> parent object index
}

// Focus creates a focused sub-session over the selected traces of the
// concept, clustered by ref. Labels already assigned in the parent are
// carried into the sub-session. The sub-session inherits the parent's
// configuration (learner, workers, metrics); opts override it — a service
// passes WithContext to bound the sub-lattice build by the request.
// ErrBadConcept reports an out-of-range concept ID.
func (s *Session) Focus(id int, sel Selector, ref *fa.FA, opts ...Option) (*Focus, error) {
	objs, err := s.Select(id, sel)
	if err != nil {
		return nil, err
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("cable: focus on empty selection of concept %d", id)
	}
	sub := &trace.Set{}
	for _, o := range objs {
		c := s.set.Class(o)
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			sub.Add(t)
		}
	}
	subSession, err := NewSession(sub, ref, append(s.options(), opts...)...)
	if err != nil {
		return nil, err
	}
	// Class order in sub matches first-appearance order over objs, which is
	// the parent's increasing object order, so class i of sub corresponds
	// to objs[i].
	if subSession.NumTraces() != len(objs) {
		return nil, fmt.Errorf("cable: focus class mismatch: %d vs %d", subSession.NumTraces(), len(objs))
	}
	for i, o := range objs {
		subSession.labels[i] = s.labels[o]
	}
	return &Focus{parent: s, sub: subSession, objMap: objs}, nil
}

// Session returns the focused sub-session; label and summarize it like any
// other session.
func (f *Focus) Session() *Session { return f.sub }

// End merges the sub-session's labels back into the parent and returns the
// number of parent traces whose label changed. ErrBadTrace reports a
// corrupted object map (a sub-session that no longer matches its parent) —
// impossible through this package's API, but checked rather than trusted
// because Focus handles flow through remote services.
func (f *Focus) End() (int, error) {
	changed := 0
	for i, o := range f.objMap {
		if !f.sub.ValidTrace(i) || !f.parent.ValidTrace(o) {
			return changed, fmt.Errorf("%w: focus merge of sub class %d into parent class %d", ErrBadTrace, i, o)
		}
		if l := f.sub.labels[i]; l != f.parent.labels[o] {
			f.parent.labels[o] = l
			changed++
		}
	}
	return changed, nil
}
