package mine_test

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/mine"
)

// Example runs the Strauss pipeline of Figure 7 on one concrete execution
// trace: the front end slices out per-object scenarios, the back end
// learns a specification.
func Example() {
	run := mine.Run{
		ID: "demo:run0",
		Events: []event.Concrete{
			{Op: "fopen", Def: 1},
			{Op: "popen", Def: 2},
			{Op: "fread", Uses: []event.ObjID{1}},
			{Op: "fwrite", Uses: []event.ObjID{2}},
			{Op: "fclose", Uses: []event.ObjID{1}},
			{Op: "pclose", Uses: []event.ObjID{2}},
		},
	}
	miner := mine.Miner{FrontEnd: mine.FrontEnd{Seeds: []string{"fopen", "popen"}}}
	spec, scenarios, err := miner.Mine("demo", []mine.Run{run})
	if err != nil {
		panic(err)
	}
	for _, c := range scenarios.Classes() {
		fmt.Println(c.Rep.Key())
	}
	fmt.Println("learned states:", spec.NumStates())
	// Output:
	// X = fopen(); fread(X); fclose(X)
	// X = popen(); fwrite(X); pclose(X)
	// learned states: 6
}
