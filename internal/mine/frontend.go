// Package mine implements Strauss, the specification miner whose buggy
// output Cable debugs (Section 2.2, Figure 7).
//
// Strauss has two halves. The front end extracts scenario traces from
// whole-program execution traces: each occurrence of a seed operation opens
// a scenario, and the events data-dependent on the seed's objects — events
// touching the seed's result, or touching objects derived from it — are
// collected into a short symbolic trace with object identities renamed to
// canonical variables. The back end learns a specification FA from the
// scenario multiset with the sk-strings learner (internal/learn), optionally
// cored. If some runs contain errors, some scenario traces are erroneous
// and the learned FA accepts erroneous traces — the debugging problem the
// rest of the repository solves.
package mine

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/trace"
)

// canonicalNames are assigned to a scenario's objects in first-appearance
// order; scenarios touching more objects continue with N7, N8, ...
var canonicalNames = []string{"X", "Y", "Z", "W", "V", "U", "T"}

// FrontEnd extracts scenario traces from whole-program traces.
type FrontEnd struct {
	// Seeds lists the operation names whose occurrences open scenarios; an
	// event is a seed occurrence if its operation matches and it defines an
	// object.
	Seeds []string
	// FollowDerived extends a scenario's object set with objects defined by
	// events that use a scenario object (transitive data flow from the
	// seed). Without it a scenario follows only the seed's own objects.
	FollowDerived bool
	// MaxEvents caps the length of a scenario trace (0 = unlimited); the
	// paper's scenarios are short, "usually less than ten events long".
	MaxEvents int
}

// Run is one whole-program execution trace.
type Run struct {
	// ID names the run (program and invocation).
	ID string
	// Events is the concrete event sequence.
	Events []event.Concrete
}

// Extract returns the scenario traces of all seed occurrences in the run,
// in occurrence order. Scenario IDs are "<runID>#<n>".
func (fe FrontEnd) Extract(run Run) []trace.Trace {
	seedOps := map[string]bool{}
	for _, s := range fe.Seeds {
		seedOps[s] = true
	}
	var out []trace.Trace
	for i, e := range run.Events {
		if !seedOps[e.Op] || e.Def == 0 {
			continue
		}
		id := fmt.Sprintf("%s#%d", run.ID, len(out))
		out = append(out, fe.scenario(run, i, id))
	}
	return out
}

// scenario slices the events data-dependent on the seed at index start.
func (fe FrontEnd) scenario(run Run, start int, id string) trace.Trace {
	tracked := map[event.ObjID]bool{run.Events[start].Def: true}
	names := map[event.ObjID]string{}
	nextName := 0
	name := func(obj event.ObjID) {
		if _, ok := names[obj]; ok {
			return
		}
		if nextName < len(canonicalNames) {
			names[obj] = canonicalNames[nextName]
		} else {
			names[obj] = fmt.Sprintf("N%d", nextName)
		}
		nextName++
	}
	var events []event.Event
	for i := start; i < len(run.Events); i++ {
		e := run.Events[i]
		relevant := false
		for obj := range tracked {
			if e.Touches(obj) {
				relevant = true
				break
			}
		}
		if !relevant {
			continue
		}
		if fe.FollowDerived && e.Def != 0 {
			tracked[e.Def] = true
		}
		// Name every tracked object this event touches, in the event's own
		// object order so the first scenario object becomes X.
		for _, obj := range e.Objects() {
			if tracked[obj] {
				name(obj)
			}
		}
		// Untracked objects abstract to "_" via Abstract's default.
		events = append(events, e.Abstract(names))
		if fe.MaxEvents > 0 && len(events) >= fe.MaxEvents {
			break
		}
	}
	return trace.Trace{ID: id, Events: events}
}

// ExtractAll runs the front end over several runs, collecting scenarios
// into a set (classes of identical scenarios are the objects later passed
// to concept analysis).
func (fe FrontEnd) ExtractAll(runs []Run) *trace.Set {
	set := &trace.Set{}
	for _, run := range runs {
		for _, sc := range fe.Extract(run) {
			set.Add(sc)
		}
	}
	return set
}
