package mine

import (
	"repro/internal/fa"
	"repro/internal/learn"
	"repro/internal/trace"
)

// BackEnd learns a specification FA from a multiset of scenario traces.
type BackEnd struct {
	// Learner is the sk-strings configuration; the zero value uses
	// learn.DefaultLearner.
	Learner learn.Learner
	// CoreThreshold, when positive, drops learned transitions exercised by
	// fewer than this many training events — the "coring" error-removal
	// heuristic of the earlier mining work. Cable-based debugging normally
	// leaves this at 0 and removes errors by relabeling instead.
	CoreThreshold int
}

// Infer learns a specification from the scenario multiset (duplicates
// matter: the learner and coring are frequency-driven).
func (be BackEnd) Infer(name string, scenarios *trace.Set) (*fa.FA, error) {
	l := be.Learner
	if l.K == 0 && l.S == 0 {
		l = learn.DefaultLearner
	}
	var all []trace.Trace
	for _, c := range scenarios.Classes() {
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			all = append(all, t)
		}
	}
	res, err := l.Learn(name, all)
	if err != nil {
		return nil, err
	}
	if be.CoreThreshold > 0 {
		return learn.Core(res, be.CoreThreshold), nil
	}
	return res.FA, nil
}

// Miner is the full Strauss pipeline of Figure 7.
type Miner struct {
	FrontEnd FrontEnd
	BackEnd  BackEnd
}

// Mine extracts scenarios from the runs and infers a specification.
// It returns both, since debugging operates on the scenarios.
func (m Miner) Mine(name string, runs []Run) (*fa.FA, *trace.Set, error) {
	scenarios := m.FrontEnd.ExtractAll(runs)
	spec, err := m.BackEnd.Infer(name, scenarios)
	if err != nil {
		return nil, nil, err
	}
	return spec, scenarios, nil
}

// Relearn reruns only the back end on a filtered scenario set — Step 3 of
// debugging a mined specification: after labeling, "the expert just runs
// the back end of the miner on the traces that have been labeled good".
func (m Miner) Relearn(name string, good *trace.Set) (*fa.FA, error) {
	return m.BackEnd.Infer(name, good)
}
