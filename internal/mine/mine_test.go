package mine

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/trace"
)

// stdioRun builds a concrete run interleaving two file-pointer lifecycles
// plus unrelated noise events.
func stdioRun() Run {
	return Run{
		ID: "prog:run1",
		Events: []event.Concrete{
			{Op: "fopen", Def: 1},
			{Op: "puts"}, // noise: touches no object
			{Op: "popen", Def: 2},
			{Op: "fread", Uses: []event.ObjID{1}},
			{Op: "fwrite", Uses: []event.ObjID{2}},
			{Op: "fclose", Uses: []event.ObjID{1}},
			{Op: "pclose", Uses: []event.ObjID{2}},
		},
	}
}

func TestExtractScenarios(t *testing.T) {
	fe := FrontEnd{Seeds: []string{"fopen", "popen"}}
	scenarios := fe.Extract(stdioRun())
	if len(scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(scenarios))
	}
	if got := scenarios[0].Key(); got != "X = fopen(); fread(X); fclose(X)" {
		t.Errorf("scenario 0 = %q", got)
	}
	if got := scenarios[1].Key(); got != "X = popen(); fwrite(X); pclose(X)" {
		t.Errorf("scenario 1 = %q", got)
	}
	if scenarios[0].ID != "prog:run1#0" || scenarios[1].ID != "prog:run1#1" {
		t.Errorf("scenario IDs = %q, %q", scenarios[0].ID, scenarios[1].ID)
	}
}

func TestExtractInterleavingSeparated(t *testing.T) {
	// Events of one object never leak into another scenario, no matter the
	// interleaving.
	run := Run{ID: "r", Events: []event.Concrete{
		{Op: "fopen", Def: 1},
		{Op: "fopen", Def: 2},
		{Op: "fread", Uses: []event.ObjID{2}},
		{Op: "fread", Uses: []event.ObjID{1}},
		{Op: "fclose", Uses: []event.ObjID{2}},
		{Op: "fclose", Uses: []event.ObjID{1}},
	}}
	fe := FrontEnd{Seeds: []string{"fopen"}}
	scenarios := fe.Extract(run)
	if len(scenarios) != 2 {
		t.Fatalf("got %d scenarios", len(scenarios))
	}
	want := "X = fopen(); fread(X); fclose(X)"
	for i, sc := range scenarios {
		if sc.Key() != want {
			t.Errorf("scenario %d = %q, want %q", i, sc.Key(), want)
		}
	}
}

func TestExtractFollowDerived(t *testing.T) {
	// A display-derived GC: with FollowDerived, events on the GC join the
	// display's scenario; without, they do not.
	run := Run{ID: "r", Events: []event.Concrete{
		{Op: "XOpenDisplay", Def: 1},
		{Op: "XCreateGC", Def: 2, Uses: []event.ObjID{1}},
		{Op: "XSetFont", Uses: []event.ObjID{2}},
		{Op: "XFreeGC", Uses: []event.ObjID{2}},
		{Op: "XCloseDisplay", Uses: []event.ObjID{1}},
	}}
	with := FrontEnd{Seeds: []string{"XOpenDisplay"}, FollowDerived: true}.Extract(run)
	if got := with[0].Key(); got != "X = XOpenDisplay(); Y = XCreateGC(X); XSetFont(Y); XFreeGC(Y); XCloseDisplay(X)" {
		t.Errorf("derived scenario = %q", got)
	}
	// Without FollowDerived the GC object stays untracked: its definition
	// renders anonymously and its later events are excluded.
	without := FrontEnd{Seeds: []string{"XOpenDisplay"}}.Extract(run)
	if got := without[0].Key(); got != "X = XOpenDisplay(); _ = XCreateGC(X); XCloseDisplay(X)" {
		t.Errorf("non-derived scenario = %q", got)
	}
}

func TestExtractUntrackedObjectsAnonymous(t *testing.T) {
	run := Run{ID: "r", Events: []event.Concrete{
		{Op: "fopen", Def: 1},
		{Op: "copy", Uses: []event.ObjID{1, 99}}, // 99 is unrelated
		{Op: "fclose", Uses: []event.ObjID{1}},
	}}
	scenarios := FrontEnd{Seeds: []string{"fopen"}}.Extract(run)
	if got := scenarios[0].Key(); got != "X = fopen(); copy(X, _); fclose(X)" {
		t.Errorf("scenario = %q", got)
	}
}

func TestExtractMaxEvents(t *testing.T) {
	run := Run{ID: "r", Events: []event.Concrete{
		{Op: "fopen", Def: 1},
		{Op: "fread", Uses: []event.ObjID{1}},
		{Op: "fread", Uses: []event.ObjID{1}},
		{Op: "fclose", Uses: []event.ObjID{1}},
	}}
	scenarios := FrontEnd{Seeds: []string{"fopen"}, MaxEvents: 2}.Extract(run)
	if got := scenarios[0].Len(); got != 2 {
		t.Errorf("capped scenario length = %d", got)
	}
}

func TestExtractSeedWithoutDefIgnored(t *testing.T) {
	run := Run{ID: "r", Events: []event.Concrete{
		{Op: "fopen"}, // ignored: no object defined
		{Op: "fopen", Def: 1},
		{Op: "fclose", Uses: []event.ObjID{1}},
	}}
	scenarios := FrontEnd{Seeds: []string{"fopen"}}.Extract(run)
	if len(scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(scenarios))
	}
}

func TestExtractAllDedups(t *testing.T) {
	fe := FrontEnd{Seeds: []string{"fopen", "popen"}}
	set := fe.ExtractAll([]Run{stdioRun(), stdioRun()})
	if set.Total() != 4 || set.NumClasses() != 2 {
		t.Fatalf("Total=%d NumClasses=%d", set.Total(), set.NumClasses())
	}
}

func TestMineEndToEnd(t *testing.T) {
	// A training set with a frequent correct protocol and one buggy run
	// (popen closed with fclose): the mined FA accepts the erroneous
	// scenario — the debugging problem.
	var runs []Run
	for i := 0; i < 5; i++ {
		runs = append(runs, stdioRun())
	}
	runs = append(runs, Run{ID: "buggy", Events: []event.Concrete{
		{Op: "popen", Def: 9},
		{Op: "fclose", Uses: []event.ObjID{9}},
	}})
	m := Miner{FrontEnd: FrontEnd{Seeds: []string{"fopen", "popen"}}}
	spec, scenarios, err := m.Mine("stdio", runs)
	if err != nil {
		t.Fatal(err)
	}
	if scenarios.Total() != 11 || scenarios.NumClasses() != 3 {
		t.Fatalf("scenarios Total=%d NumClasses=%d", scenarios.Total(), scenarios.NumClasses())
	}
	for _, c := range scenarios.Classes() {
		if !spec.Accepts(c.Rep) {
			t.Errorf("mined spec rejects its own scenario %q", c.Rep.Key())
		}
	}
	if !spec.Accepts(trace.ParseEvents("", "X = popen()", "fclose(X)")) {
		t.Error("mined spec does not exhibit the expected bug")
	}

	// Relearn on the good classes only: the bug disappears.
	good := &trace.Set{}
	for _, c := range scenarios.Classes() {
		if !strings.Contains(c.Rep.Key(), "popen(); fclose") {
			for range c.IDs {
				good.Add(c.Rep)
			}
		}
	}
	fixed, err := m.Relearn("stdio-fixed", good)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Accepts(trace.ParseEvents("", "X = popen()", "fclose(X)")) {
		t.Error("relearned spec still buggy")
	}
	if !fixed.Accepts(trace.ParseEvents("", "X = fopen()", "fread(X)", "fclose(X)")) {
		t.Error("relearned spec lost good behaviour")
	}
}

func TestBackEndCoring(t *testing.T) {
	set := &trace.Set{}
	for i := 0; i < 10; i++ {
		set.Add(trace.ParseEvents("", "X = fopen()", "fclose(X)"))
	}
	set.Add(trace.ParseEvents("", "X = popen()", "fclose(X)"))
	be := BackEnd{CoreThreshold: 3}
	spec, err := be.Infer("cored", set)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Accepts(trace.ParseEvents("", "X = popen()", "fclose(X)")) {
		t.Error("coring kept rare erroneous scenario")
	}
	if !spec.Accepts(trace.ParseEvents("", "X = fopen()", "fclose(X)")) {
		t.Error("coring dropped frequent good scenario")
	}
}
