package strategy

import (
	"math/rand"
	"testing"

	"repro/internal/cable"
	"repro/internal/fa"
	"repro/internal/trace"
)

// sessionFixture builds a session and its reference labeling over the
// stdio violations.
func sessionFixture(t *testing.T) (*cable.Session, []cable.Label) {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fwrite(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = popen()", "fread(X)"),
		trace.ParseEvents("v4", "X = fopen()", "fread(X)"),
		trace.ParseEvents("v5", "X = fopen()", "pclose(X)"),
	)
	s, err := cable.NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	return s, []cable.Label{cable.Good, cable.Good, cable.Good, cable.Bad, cable.Bad, cable.Bad}
}

func TestPlanCostMatchesStrategyCost(t *testing.T) {
	s, ref := sessionFixture(t)
	l := s.Lattice()

	plan, cost, ok := TopDownPlan(l, ref)
	if !ok {
		t.Fatal("TopDownPlan failed")
	}
	direct, _ := TopDown(l, ref)
	if plan.Cost() != cost || cost != direct {
		t.Errorf("TopDown plan cost %v, returned %v, direct %v", plan.Cost(), cost, direct)
	}

	eplan, ecost, ok := ExpertPlan(l, ref)
	if !ok {
		t.Fatal("ExpertPlan failed")
	}
	edirect, _ := Expert(l, ref)
	if eplan.Cost() != ecost || ecost != edirect {
		t.Errorf("Expert plan cost %v, returned %v, direct %v", eplan.Cost(), ecost, edirect)
	}

	rng := rand.New(rand.NewSource(4))
	rplan, rcost, ok := RandomPlan(l, ref, rng, 0)
	if !ok || rplan.Cost() != rcost {
		t.Errorf("Random plan cost %v vs %v (ok=%v)", rplan.Cost(), rcost, ok)
	}
}

func TestPlanApplyReproducesLabeling(t *testing.T) {
	s, ref := sessionFixture(t)
	plan, _, ok := TopDownPlan(s.Lattice(), ref)
	if !ok {
		t.Fatal("plan failed")
	}
	if err := plan.Apply(s); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("session not fully labeled after replay")
	}
	for i := 0; i < s.NumTraces(); i++ {
		if must(s.LabelOf(i)) != ref[i] {
			t.Errorf("trace %d labeled %q, want %q", i, must(s.LabelOf(i)), ref[i])
		}
	}
}

func TestExpertPlanApplyReproducesLabeling(t *testing.T) {
	s, ref := sessionFixture(t)
	plan, _, ok := ExpertPlan(s.Lattice(), ref)
	if !ok {
		t.Fatal("plan failed")
	}
	if err := plan.Apply(s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumTraces(); i++ {
		if must(s.LabelOf(i)) != ref[i] {
			t.Errorf("trace %d labeled %q, want %q", i, must(s.LabelOf(i)), ref[i])
		}
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Ops: []Op{{Concept: 3, Label: cable.Good}, {Concept: 5}}}
	if got := p.String(); got != "c3!good c5" {
		t.Errorf("String = %q", got)
	}
	if c := p.Cost(); c.Inspections != 2 || c.Labelings != 1 {
		t.Errorf("Cost = %v", c)
	}
}

func TestPlanApplyMalformed(t *testing.T) {
	s, _ := sessionFixture(t)
	// Label everything, then try a plan that labels again: no unlabeled
	// traces remain, so Apply must error.
	s.LabelTraces(s.Lattice().Top(), cable.SelectAll(), cable.Good)
	p := Plan{Ops: []Op{{Concept: s.Lattice().Top(), Label: cable.Bad}}}
	if err := p.Apply(s); err == nil {
		t.Error("malformed plan applied cleanly")
	}
}

func TestRandomPlanApplyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		s, ref := sessionFixture(t)
		plan, _, ok := RandomPlan(s.Lattice(), ref, rng, 0)
		if !ok {
			t.Fatal("random plan failed")
		}
		if err := plan.Apply(s); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < s.NumTraces(); i++ {
			if must(s.LabelOf(i)) != ref[i] {
				t.Fatalf("trial %d: trace %d labeled %q, want %q", trial, i, must(s.LabelOf(i)), ref[i])
			}
		}
	}
}

func TestOptimalPlanAchievesLabeling(t *testing.T) {
	s, ref := sessionFixture(t)
	plan, cost, ok := OptimalPlan(s.Lattice(), ref, 0)
	if !ok {
		t.Fatal("OptimalPlan failed")
	}
	if plan.Cost() != cost {
		t.Fatalf("plan cost %v != returned %v", plan.Cost(), cost)
	}
	// The witness really is optimal: its cost matches Optimal's.
	direct, ok := Optimal(s.Lattice(), ref, 0)
	if !ok || direct != cost {
		t.Fatalf("Optimal = %v, plan = %v", direct, cost)
	}
	// Replaying it through the Cable commands yields the exact labeling.
	if err := plan.Apply(s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumTraces(); i++ {
		if must(s.LabelOf(i)) != ref[i] {
			t.Errorf("trace %d labeled %q, want %q", i, must(s.LabelOf(i)), ref[i])
		}
	}
	// And no shorter plan exists among the other strategies' plans.
	tdPlan, _, _ := TopDownPlan(s.Lattice(), ref)
	if len(plan.Ops) > len(tdPlan.Ops) {
		t.Errorf("optimal plan (%d ops) longer than top-down (%d)", len(plan.Ops), len(tdPlan.Ops))
	}
}

// must unwraps a (value, error) pair, panicking on error; these tests only
// use IDs the checked accessors accept.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
