package strategy

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cable"
	"repro/internal/concept"
)

// Op is one step of a labeling plan: inspect a concept and, optionally,
// label its unlabeled traces.
type Op struct {
	// Concept is the inspected concept's ID.
	Concept int
	// Label is the label applied to the concept's unlabeled traces, or
	// cable.Unlabeled when the visit only inspected.
	Label cable.Label
}

// Plan is a sequence of Cable operations produced by a strategy. Replaying
// a plan on a session reproduces the strategy's labeling through the same
// commands a human would issue.
type Plan struct {
	// Ops are the steps in order.
	Ops []Op
}

// Cost returns the plan's cost under the Section 4.2 model: one inspection
// per op plus one labeling per op that labels.
func (p Plan) Cost() Cost {
	c := Cost{Inspections: len(p.Ops)}
	for _, op := range p.Ops {
		if op.Label != cable.Unlabeled {
			c.Labelings++
		}
	}
	return c
}

// String renders the plan compactly: "c3!good c5 c7!bad ...".
func (p Plan) String() string {
	parts := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		if op.Label == cable.Unlabeled {
			parts[i] = fmt.Sprintf("c%d", op.Concept)
		} else {
			parts[i] = fmt.Sprintf("c%d!%s", op.Concept, op.Label)
		}
	}
	return strings.Join(parts, " ")
}

// Apply replays the plan on a session using the public Cable commands,
// labeling each op's concept's unlabeled traces. It returns an error if an
// op labels a concept with no unlabeled traces (a malformed plan).
func (p Plan) Apply(s *cable.Session) error {
	for i, op := range p.Ops {
		if op.Label == cable.Unlabeled {
			continue // pure inspection
		}
		n, err := s.LabelTraces(op.Concept, cable.SelectUnlabeled(), op.Label)
		if err != nil {
			return fmt.Errorf("strategy: plan op %d: %w", i, err)
		}
		if n == 0 {
			return fmt.Errorf("strategy: plan op %d labels concept %d with no unlabeled traces", i, op.Concept)
		}
	}
	return nil
}

// planRun wraps run, recording each visit as a plan op.
type planRun struct {
	*run
	plan Plan
}

func (r *planRun) visit(id int) bool {
	label, _ := r.uniformLabel(r.unlabeledIn(id))
	if r.run.visit(id) {
		r.plan.Ops = append(r.plan.Ops, Op{Concept: id, Label: label})
		return true
	}
	r.plan.Ops = append(r.plan.Ops, Op{Concept: id})
	return false
}

// TopDownPlan is TopDown returning the full operation sequence.
func TopDownPlan(l *concept.Lattice, ref []cable.Label) (Plan, Cost, bool) {
	r0, err := newRun(l, ref)
	if err != nil {
		return Plan{}, Cost{}, false
	}
	r := &planRun{run: r0}
	order := l.TopDownOrder()
	for !r.done() {
		progress := false
		for _, id := range order {
			if r.done() {
				break
			}
			if r.fullyLabeled(id) {
				continue
			}
			if r.visit(id) {
				progress = true
			}
		}
		if !progress {
			return r.plan, r.cost, false
		}
	}
	return r.plan, r.cost, true
}

// ExpertPlan is Expert returning the full operation sequence (excluding
// the final verification inspection, which targets the top concept).
func ExpertPlan(l *concept.Lattice, ref []cable.Label) (Plan, Cost, bool) {
	r0, err := newRun(l, ref)
	if err != nil {
		return Plan{}, Cost{}, false
	}
	r := &planRun{run: r0}
	for !r.done() {
		best, bestCover := -1, 0
		for _, c := range l.Concepts() {
			un := r.unlabeledIn(c.ID)
			if un.Empty() {
				continue
			}
			if _, ok := r.uniformLabel(un); !ok {
				continue
			}
			if cover := un.Len(); cover > bestCover {
				best, bestCover = c.ID, cover
			}
		}
		if best < 0 {
			return r.plan, r.cost, false
		}
		r.visit(best)
	}
	r.cost.Inspections++
	r.plan.Ops = append(r.plan.Ops, Op{Concept: l.Top()}) // Step 2b check
	return r.plan, r.cost, true
}

// RandomPlan is Random returning the full operation sequence.
func RandomPlan(l *concept.Lattice, ref []cable.Label, rng *rand.Rand, maxOps int) (Plan, Cost, bool) {
	r0, err := newRun(l, ref)
	if err != nil {
		return Plan{}, Cost{}, false
	}
	r := &planRun{run: r0}
	if maxOps <= 0 {
		maxOps = 1000 * l.Len()
	}
	for !r.done() {
		var candidates []int
		for _, c := range l.Concepts() {
			if !r.fullyLabeled(c.ID) {
				candidates = append(candidates, c.ID)
			}
		}
		if len(candidates) == 0 {
			break
		}
		r.visit(candidates[rng.Intn(len(candidates))])
		if r.cost.Total() > maxOps {
			return r.plan, r.cost, false
		}
	}
	return r.plan, r.cost, true
}
