package strategy

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/trace"
	"repro/internal/wellformed"
)

// stdioFixture builds the well-formed lattice and reference labeling used
// across these tests (Section 2.1's violations over an unordered FA).
func stdioFixture(t *testing.T) (*concept.Lattice, []cable.Label) {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fwrite(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = popen()", "fread(X)"),
		trace.ParseEvents("v4", "X = fopen()", "fread(X)"),
		trace.ParseEvents("v5", "X = fopen()", "pclose(X)"),
	)
	ref := fa.FromTraces(set.Alphabet())
	l, err := concept.BuildFromTraces(set.Representatives(), ref)
	if err != nil {
		t.Fatal(err)
	}
	return l, []cable.Label{cable.Good, cable.Good, cable.Good, cable.Bad, cable.Bad, cable.Bad}
}

// fooFixture builds the non-well-formed lattice of Section 4.3.
func fooFixture(t *testing.T) (*concept.Lattice, []cable.Label) {
	t.Helper()
	b := fa.NewBuilder("foo")
	s := b.State()
	b.Start(s)
	b.Accept(s)
	b.EdgeStr(s, "foo()", s)
	traces := []trace.Trace{
		trace.ParseEvents("even2", "foo()", "foo()"),
		trace.ParseEvents("odd1", "foo()"),
	}
	l, err := concept.BuildFromTraces(traces, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return l, []cable.Label{cable.Good, cable.Bad}
}

func TestAllStrategiesSucceedOnWellFormed(t *testing.T) {
	l, ref := stdioFixture(t)
	if ok, _ := wellformed.Check(l, ref); !ok {
		t.Fatal("fixture not well-formed")
	}
	checks := map[string]func() (Cost, bool){
		"TopDown":  func() (Cost, bool) { return TopDown(l, ref) },
		"BottomUp": func() (Cost, bool) { return BottomUp(l, ref) },
		"Expert":   func() (Cost, bool) { return Expert(l, ref) },
		"Optimal":  func() (Cost, bool) { return Optimal(l, ref, 0) },
		"Random":   func() (Cost, bool) { return Random(l, ref, rand.New(rand.NewSource(1)), 0) },
	}
	for name, f := range checks {
		cost, ok := f()
		if !ok {
			t.Errorf("%s failed on well-formed lattice", name)
		}
		if cost.Total() <= 0 || cost.Inspections < cost.Labelings {
			t.Errorf("%s cost implausible: %s", name, cost)
		}
	}
}

func TestAllStrategiesFailOnNotWellFormed(t *testing.T) {
	l, ref := fooFixture(t)
	if ok, _ := wellformed.Check(l, ref); ok {
		t.Fatal("foo fixture unexpectedly well-formed")
	}
	if _, ok := TopDown(l, ref); ok {
		t.Error("TopDown succeeded")
	}
	if _, ok := BottomUp(l, ref); ok {
		t.Error("BottomUp succeeded")
	}
	if _, ok := Expert(l, ref); ok {
		t.Error("Expert succeeded")
	}
	if _, ok := Optimal(l, ref, 0); ok {
		t.Error("Optimal succeeded")
	}
	if _, ok := Random(l, ref, rand.New(rand.NewSource(1)), 100); ok {
		t.Error("Random succeeded")
	}
	if _, ok := RandomMean(l, ref, 1, 8); ok {
		t.Error("RandomMean succeeded")
	}
}

func TestOptimalIsLowerBound(t *testing.T) {
	l, ref := stdioFixture(t)
	opt, ok := Optimal(l, ref, 0)
	if !ok {
		t.Fatal("Optimal failed")
	}
	for name, f := range map[string]func() (Cost, bool){
		"TopDown":  func() (Cost, bool) { return TopDown(l, ref) },
		"BottomUp": func() (Cost, bool) { return BottomUp(l, ref) },
		"Expert":   func() (Cost, bool) { return Expert(l, ref) },
	} {
		c, ok := f()
		if !ok {
			t.Fatalf("%s failed", name)
		}
		if c.Total() < opt.Total() {
			t.Errorf("%s (%s) beat Optimal (%s)", name, c, opt)
		}
	}
	mean, ok := RandomMean(l, ref, 7, 64)
	if !ok || mean < float64(opt.Total()) {
		t.Errorf("RandomMean %.1f below Optimal %d", mean, opt.Total())
	}
}

func TestBaseline(t *testing.T) {
	l, _ := stdioFixture(t)
	c := Baseline(l)
	if c.Inspections != 6 || c.Labelings != 6 || c.Total() != 12 {
		t.Errorf("Baseline = %s", c)
	}
}

func TestOptimalBudgetExceeded(t *testing.T) {
	l, ref := stdioFixture(t)
	if _, ok := Optimal(l, ref, 1); ok {
		t.Error("Optimal with budget 1 claimed success")
	}
}

func TestCostArithmetic(t *testing.T) {
	c := Cost{Inspections: 3, Labelings: 2}.Add(Cost{Inspections: 1, Labelings: 1})
	if c.Total() != 7 || c.Inspections != 4 {
		t.Errorf("Add/Total = %+v", c)
	}
	if s := c.String(); s != "7 ops (4 inspections + 3 labelings)" {
		t.Errorf("String = %q", s)
	}
}

func TestRunValidation(t *testing.T) {
	l, ref := stdioFixture(t)
	if _, ok := TopDown(l, ref[:3]); ok {
		t.Error("TopDown accepted short reference labeling")
	}
	bad := append([]cable.Label(nil), ref...)
	bad[0] = cable.Unlabeled
	if _, ok := TopDown(l, bad); ok {
		t.Error("TopDown accepted unlabeled reference entry")
	}
}

// Property: strategy success coincides with lattice well-formedness, and
// Optimal lower-bounds the other strategies, across random contexts and
// labelings.
func TestPropStrategiesVsWellFormedness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 120; iter++ {
		no := 1 + rng.Intn(7)
		na := 1 + rng.Intn(6)
		objs := make([]string, no)
		for i := range objs {
			objs[i] = fmt.Sprintf("o%d", i)
		}
		attrs := make([]string, na)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		ctx := concept.NewContext(objs, attrs)
		for o := 0; o < no; o++ {
			for a := 0; a < na; a++ {
				if rng.Intn(2) == 0 {
					ctx.Relate(o, a)
				}
			}
		}
		l := concept.Build(ctx)
		ref := make([]cable.Label, no)
		for i := range ref {
			if rng.Intn(2) == 0 {
				ref[i] = cable.Good
			} else {
				ref[i] = cable.Bad
			}
		}
		wf, _ := wellformed.Check(l, ref)
		tdCost, td := TopDown(l, ref)
		buCost, bu := BottomUp(l, ref)
		exCost, ex := Expert(l, ref)
		optCost, opt := Optimal(l, ref, 0)
		if td != wf || bu != wf || ex != wf || opt != wf {
			t.Fatalf("iter %d: success mismatch wf=%v td=%v bu=%v ex=%v opt=%v\n%s",
				iter, wf, td, bu, ex, opt, l)
		}
		if wf {
			if optCost.Total() > tdCost.Total() || optCost.Total() > buCost.Total() || optCost.Total() > exCost.Total() {
				t.Fatalf("iter %d: Optimal %s beaten (td %s, bu %s, ex %s)",
					iter, optCost, tdCost, buCost, exCost)
			}
			rdCost, rd := Random(l, ref, rng, 0)
			if !rd || rdCost.Total() < optCost.Total() {
				t.Fatalf("iter %d: Random %s vs Optimal %s (ok=%v)", iter, rdCost, optCost, rd)
			}
		}
	}
}
