package strategy

import (
	"repro/internal/bitset"
	"repro/internal/cable"
	"repro/internal/concept"
)

// Optimal computes the minimum-cost labeling plan by breadth-first search
// over labeling states. States are sets of already-labeled traces; an
// action inspects a concept whose unlabeled remainder is uniform and labels
// that remainder, costing one inspection plus one labeling. Since every
// productive action costs exactly two operations and unproductive
// inspections never help, the optimum is twice the minimum number of
// labeling steps.
//
// The search is exponential in the worst case; maxStates bounds the
// explored state count (0 means DefaultOptimalBudget). When the budget is
// exceeded — as the paper reports for its four largest specifications,
// where "the program we wrote to evaluate these strategies took too long to
// run" — Optimal returns ok = false.
func Optimal(l *concept.Lattice, ref []cable.Label, maxStates int) (Cost, bool) {
	_, cost, ok := OptimalPlan(l, ref, maxStates)
	return cost, ok
}

// OptimalPlan is Optimal returning a witness: one minimum-length sequence
// of (inspect, label) operations achieving the reference labeling.
func OptimalPlan(l *concept.Lattice, ref []cable.Label, maxStates int) (Plan, Cost, bool) {
	r, err := newRun(l, ref)
	if err != nil {
		return Plan{}, Cost{}, false
	}
	if maxStates <= 0 {
		maxStates = DefaultOptimalBudget
	}
	n := len(ref)
	start := bitset.New(n)
	if n == 0 {
		return Plan{}, Cost{}, true
	}
	type node struct {
		labeled *bitset.Set
		plan    Plan
	}
	visited := map[string]bool{start.Key(): true}
	frontier := []node{{labeled: start}}
	var keyBuf []byte // reused AppendKey scratch; visited lookups stay alloc-free
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, cur := range frontier {
			for _, c := range l.Concepts() {
				un := bitset.Difference(c.Extent, cur.labeled)
				if un.Empty() {
					continue
				}
				label, ok := r.uniformLabel(un)
				if !ok {
					continue
				}
				plan := Plan{Ops: append(append([]Op(nil), cur.plan.Ops...), Op{Concept: c.ID, Label: label})}
				succ := bitset.Union(cur.labeled, un)
				if succ.Len() == n {
					k := len(plan.Ops)
					return plan, Cost{Inspections: k, Labelings: k}, true
				}
				keyBuf = succ.AppendKey(keyBuf[:0])
				if visited[string(keyBuf)] {
					continue
				}
				visited[string(keyBuf)] = true
				if len(visited) > maxStates {
					return Plan{}, Cost{}, false
				}
				next = append(next, node{labeled: succ, plan: plan})
			}
		}
		frontier = next
	}
	// No plan reaches the full labeling: the lattice is not well-formed.
	return Plan{}, Cost{}, false
}

// DefaultOptimalBudget is the default bound on explored labeling states.
const DefaultOptimalBudget = 200000
