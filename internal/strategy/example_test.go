package strategy_test

import (
	"fmt"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// Example measures the labeling strategies of Section 4.2 on a small
// debugging problem and replays the expert's plan onto a live session.
func Example() {
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fread(X)"),
		trace.ParseEvents("v3", "X = fopen()", "fread(X)"),
	)
	ref := fa.FromTraces(set.Alphabet())
	lattice, err := concept.BuildFromTraces(set.Representatives(), ref)
	if err != nil {
		panic(err)
	}
	truth := []cable.Label{cable.Good, cable.Good, cable.Bad, cable.Bad}

	baseline := strategy.Baseline(lattice)
	expertPlan, expertCost, ok := strategy.ExpertPlan(lattice, truth)
	if !ok {
		panic("expert failed")
	}
	optimal, _ := strategy.Optimal(lattice, truth, 0)
	fmt.Println("baseline:", baseline.Total(), "ops")
	fmt.Println("expert:  ", expertCost.Total(), "ops")
	fmt.Println("optimal: ", optimal.Total(), "ops")

	// Replaying the plan through the real Cable commands reproduces the
	// desired labeling.
	session, err := cable.NewSession(set, ref)
	if err != nil {
		panic(err)
	}
	if err := expertPlan.Apply(session); err != nil {
		panic(err)
	}
	fmt.Println("session done:", session.Done())
	// Output:
	// baseline: 8 ops
	// expert:   5 ops
	// optimal:  4 ops
	// session done: true
}
