// Package strategy implements the labeling strategies of Section 4.2 and
// their cost model, used to regenerate Table 3.
//
// A strategy drives a Cable session from an all-unlabeled state to a given
// reference labeling. Its cost counts Cable operations: inspecting a
// concept and labeling traces. Inspections are counted so that an "optimal"
// strategy cannot peek at every concept for free; a strategy may not label
// a concept it has not just inspected.
//
// All strategies here follow the discipline of the paper's automatic
// strategies: when visiting a concept, they label its unlabeled traces iff
// those traces all carry the same reference label (a strategy never
// mislabels a trace and fixes it later). On lattices that are not
// well-formed for the labeling (internal/wellformed), no such strategy can
// finish, and the strategies report failure.
package strategy

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cable"
	"repro/internal/concept"
)

// Cost tallies Cable operations.
type Cost struct {
	// Inspections counts concept visits.
	Inspections int
	// Labelings counts Label-traces commands.
	Labelings int
}

// Total returns the number of user decisions: inspections plus labelings.
func (c Cost) Total() int { return c.Inspections + c.Labelings }

// Add accumulates another cost.
func (c Cost) Add(d Cost) Cost {
	return Cost{Inspections: c.Inspections + d.Inspections, Labelings: c.Labelings + d.Labelings}
}

func (c Cost) String() string {
	return fmt.Sprintf("%d ops (%d inspections + %d labelings)", c.Total(), c.Inspections, c.Labelings)
}

// run tracks a strategy execution over a lattice toward a reference
// labeling.
type run struct {
	l       *concept.Lattice
	ref     []cable.Label
	labeled *bitset.Set
	cost    Cost
}

func newRun(l *concept.Lattice, ref []cable.Label) (*run, error) {
	if len(ref) != l.Context().NumObjects() {
		return nil, fmt.Errorf("strategy: %d reference labels for %d objects",
			len(ref), l.Context().NumObjects())
	}
	for i, lb := range ref {
		if lb == cable.Unlabeled {
			return nil, fmt.Errorf("strategy: reference labeling leaves object %d unlabeled", i)
		}
	}
	return &run{l: l, ref: ref, labeled: bitset.New(len(ref))}, nil
}

// unlabeledIn returns the concept's objects not yet labeled.
func (r *run) unlabeledIn(id int) *bitset.Set {
	return bitset.Difference(r.l.Concept(id).Extent, r.labeled)
}

// fullyLabeled reports whether the concept has no unlabeled traces.
func (r *run) fullyLabeled(id int) bool {
	return r.l.Concept(id).Extent.SubsetOf(r.labeled)
}

// uniformLabel returns the common reference label of the objects, or ok =
// false if they disagree or the set is empty.
func (r *run) uniformLabel(x *bitset.Set) (cable.Label, bool) {
	label := cable.Unlabeled
	ok := true
	x.Range(func(o int) bool {
		if label == cable.Unlabeled {
			label = r.ref[o]
			return true
		}
		if r.ref[o] != label {
			ok = false
			return false
		}
		return true
	})
	return label, ok && label != cable.Unlabeled
}

// visit inspects a concept (cost) and labels its unlabeled traces if they
// are uniform (cost). It reports whether a labeling happened.
func (r *run) visit(id int) bool {
	r.cost.Inspections++
	un := r.unlabeledIn(id)
	if _, ok := r.uniformLabel(un); !ok {
		return false
	}
	r.cost.Labelings++
	r.labeled.UnionWith(un)
	return true
}

func (r *run) done() bool { return r.labeled.Len() == len(r.ref) }

// TopDown implements the Top-down strategy: repeated breadth-first
// traversals from the top concept, visiting concepts that still have
// unlabeled traces and labeling whenever the remainder is uniform. It
// fails (ok = false) if a full traversal makes no progress, which happens
// exactly when the lattice is not well-formed for the labeling.
func TopDown(l *concept.Lattice, ref []cable.Label) (Cost, bool) {
	r, err := newRun(l, ref)
	if err != nil {
		return Cost{}, false
	}
	order := l.TopDownOrder()
	for !r.done() {
		progress := false
		for _, id := range order {
			if r.done() {
				break
			}
			if r.fullyLabeled(id) {
				continue
			}
			if r.visit(id) {
				progress = true
			}
		}
		if !progress {
			return r.cost, false
		}
	}
	return r.cost, true
}

// BottomUp implements the Bottom-up strategy: repeatedly visit a concept
// that is not fully labeled but all of whose children are, and label its
// remainder. On a well-formed lattice the remainder is always uniform. On
// the loop-free specifications of the evaluation this strategy degenerates
// to Baseline: each class of identical traces sits in its own low concept.
func BottomUp(l *concept.Lattice, ref []cable.Label) (Cost, bool) {
	r, err := newRun(l, ref)
	if err != nil {
		return Cost{}, false
	}
	for !r.done() {
		ready := -1
		for _, c := range l.Concepts() {
			if r.fullyLabeled(c.ID) {
				continue
			}
			allChildrenDone := true
			for _, ch := range l.Children(c.ID) {
				if !r.fullyLabeled(ch) {
					allChildrenDone = false
					break
				}
			}
			if allChildrenDone {
				ready = c.ID
				break
			}
		}
		if ready < 0 {
			return r.cost, false
		}
		if !r.visit(ready) {
			// Mixed remainder: the lattice is not well-formed.
			return r.cost, false
		}
	}
	return r.cost, true
}

// Random implements the Random strategy: visit uniformly-random concepts
// that still have unlabeled traces, labeling when possible, until done.
// maxOps bounds the walk so non-well-formed lattices terminate (0 means
// 1000 × the number of concepts).
func Random(l *concept.Lattice, ref []cable.Label, rng *rand.Rand, maxOps int) (Cost, bool) {
	r, err := newRun(l, ref)
	if err != nil {
		return Cost{}, false
	}
	if maxOps <= 0 {
		maxOps = 1000 * l.Len()
	}
	for !r.done() {
		var candidates []int
		for _, c := range l.Concepts() {
			if !r.fullyLabeled(c.ID) {
				candidates = append(candidates, c.ID)
			}
		}
		if len(candidates) == 0 {
			break
		}
		r.visit(candidates[rng.Intn(len(candidates))])
		if r.cost.Total() > maxOps {
			return r.cost, false
		}
	}
	return r.cost, true
}

// RandomMean runs Random trials times (the paper uses 1024) and returns
// the arithmetic mean total cost over the trials. Trials run in parallel,
// each seeded deterministically from the base seed, so the result is
// reproducible regardless of scheduling.
func RandomMean(l *concept.Lattice, ref []cable.Label, seed int64, trials int) (float64, bool) {
	if trials <= 0 {
		return 0, false
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	costs := make([]int, trials)
	failed := make([]bool, trials)
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= trials {
					return
				}
				rng := rand.New(rand.NewSource(seed + int64(i)))
				c, ok := Random(l, ref, rng, 0)
				if !ok {
					failed[i] = true
					return
				}
				costs[i] = c.Total()
			}
		}()
	}
	wg.Wait()
	sum := 0
	for i := 0; i < trials; i++ {
		if failed[i] {
			return 0, false
		}
		sum += costs[i]
	}
	return float64(sum) / float64(trials), true
}

// Baseline implements the non-Cable baseline: inspect and label each class
// of identical traces separately, costing two operations per class (the
// objects of these lattices are already one-per-class).
func Baseline(l *concept.Lattice) Cost {
	n := l.Context().NumObjects()
	return Cost{Inspections: n, Labelings: n}
}

// Expert simulates the expert user of Section 5.3: a mostly top-down
// navigator who knows which concepts are worth labeling (directed by
// "interesting" transitions). Each step greedily labels the concept
// covering the most unlabeled traces among those whose remainders are
// uniform; a final verification inspection of the good traces at the top
// concept (Step 2b) is charged at the end. It fails on lattices that are
// not well-formed.
func Expert(l *concept.Lattice, ref []cable.Label) (Cost, bool) {
	r, err := newRun(l, ref)
	if err != nil {
		return Cost{}, false
	}
	for !r.done() {
		best, bestCover := -1, 0
		for _, c := range l.Concepts() {
			un := r.unlabeledIn(c.ID)
			if un.Empty() {
				continue
			}
			if _, ok := r.uniformLabel(un); !ok {
				continue
			}
			if cover := un.Len(); cover > bestCover {
				best, bestCover = c.ID, cover
			}
		}
		if best < 0 {
			return r.cost, false
		}
		r.visit(best)
	}
	// Step 2b: check the labeling by viewing the FA of the good traces.
	r.cost.Inspections++
	return r.cost, true
}
