package wellformed

import (
	"testing"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/trace"
)

// fooLattice builds the Section 4.3 counterexample: a specification whose
// FA has one accepting state with a single foo() self-loop accepts all
// sequences of foo calls, so every trace executes the same lone transition
// and lands in one concept. If only even counts of foo are correct, that
// concept is mixed and the lattice is not well-formed.
func fooLattice(t *testing.T) (*concept.Lattice, []cable.Label) {
	t.Helper()
	b := fa.NewBuilder("foo")
	s := b.State()
	b.Start(s)
	b.Accept(s)
	b.EdgeStr(s, "foo()", s)
	ref := b.MustBuild()
	traces := []trace.Trace{
		trace.ParseEvents("even2", "foo()", "foo()"),
		trace.ParseEvents("odd1", "foo()"),
		trace.ParseEvents("even4", "foo()", "foo()", "foo()", "foo()"),
		trace.ParseEvents("odd3", "foo()", "foo()", "foo()"),
	}
	l, err := concept.BuildFromTraces(traces, ref)
	if err != nil {
		t.Fatal(err)
	}
	labels := []cable.Label{cable.Good, cable.Bad, cable.Good, cable.Bad}
	return l, labels
}

// stdioLattice builds a well-formed lattice: Section 2.1 violations over an
// unordered reference FA with a good/bad labeling that concept boundaries
// can express.
func stdioLattice(t *testing.T) (*concept.Lattice, []cable.Label) {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fwrite(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = popen()", "fread(X)"),
		trace.ParseEvents("v4", "X = fopen()", "fread(X)"),
		trace.ParseEvents("v5", "X = fopen()", "pclose(X)"),
	)
	ref := fa.FromTraces(set.Alphabet())
	l, err := concept.BuildFromTraces(set.Representatives(), ref)
	if err != nil {
		t.Fatal(err)
	}
	labels := []cable.Label{cable.Good, cable.Good, cable.Good, cable.Bad, cable.Bad, cable.Bad}
	return l, labels
}

func TestFooNotWellFormed(t *testing.T) {
	l, labels := fooLattice(t)
	ok, bad := Check(l, labels)
	if ok || len(bad) == 0 {
		t.Fatalf("foo lattice reported well-formed (bad=%v)", bad)
	}
	minimal := MixedConcepts(l, labels)
	if len(minimal) == 0 {
		t.Fatal("no minimal mixed concepts")
	}
	// The minimal mixed concept holds all four traces.
	for _, id := range minimal {
		if l.Concept(id).Extent.Len() != 4 {
			t.Errorf("minimal mixed concept c%d extent = %s", id, l.Concept(id).Extent)
		}
	}
}

func TestStdioWellFormed(t *testing.T) {
	l, labels := stdioLattice(t)
	ok, bad := Check(l, labels)
	if !ok {
		t.Fatalf("stdio lattice not well-formed; bad concepts %v\n%s", bad, l)
	}
	if mixed := MixedConcepts(l, labels); len(mixed) != 0 {
		t.Errorf("MixedConcepts on well-formed lattice = %v", mixed)
	}
}

func TestUniformLabelingAlwaysWellFormed(t *testing.T) {
	l, labels := fooLattice(t)
	for i := range labels {
		labels[i] = cable.Good
	}
	if ok, _ := Check(l, labels); !ok {
		t.Fatal("uniform labeling reported not well-formed")
	}
}

func TestFocusRepairsFooLattice(t *testing.T) {
	// The user's escape hatch in Section 4.3: re-cluster the mixed traces
	// with a better FA. A single two-state parity loop does NOT work — a
	// three-foo trace executes both loop transitions, exactly like the even
	// traces. What works is the union of two disjoint branches, one
	// accepting even counts and one accepting odd counts, so each trace's
	// accepting runs stay within one branch and parity shows up in the
	// executed-transition sets.
	b := fa.NewBuilder("foo-parity")
	e := b.States(2) // even branch: accept at e0
	o := b.States(2) // odd branch: accept at o1
	b.Start(e[0], o[0])
	b.Accept(e[0], o[1])
	b.EdgeStr(e[0], "foo()", e[1])
	b.EdgeStr(e[1], "foo()", e[0])
	b.EdgeStr(o[0], "foo()", o[1])
	b.EdgeStr(o[1], "foo()", o[0])
	parity := b.MustBuild()
	traces := []trace.Trace{
		trace.ParseEvents("even2", "foo()", "foo()"),
		trace.ParseEvents("odd1", "foo()"),
		trace.ParseEvents("even4", "foo()", "foo()", "foo()", "foo()"),
		trace.ParseEvents("odd3", "foo()", "foo()", "foo()"),
	}
	l, err := concept.BuildFromTraces(traces, parity)
	if err != nil {
		t.Fatal(err)
	}
	labels := []cable.Label{cable.Good, cable.Bad, cable.Good, cable.Bad}
	if ok, bad := Check(l, labels); !ok {
		t.Fatalf("parity lattice not well-formed; bad = %v\n%s", bad, l)
	}
}
