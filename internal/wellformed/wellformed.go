// Package wellformed implements the well-formed-lattice check of Section
// 4.3. Because Cable labels traces only en masse through concepts, a
// lattice can make a desired labeling unreachable; such lattices are not
// well-formed for the labeling, and every labeling strategy fails on them.
//
// A concept c is well-formed for a labeling iff
//
//  1. the labeling gives the same label to every trace in c, or
//  2. every child of c is well-formed, and every trace of c that is not in
//     a child of c gets the same label.
//
// A lattice is well-formed iff all of its concepts are. The classic
// counterexample (an FA accepting foo* when only even counts of foo are
// correct) lives in this package's tests.
package wellformed

import (
	"repro/internal/bitset"
	"repro/internal/cable"
	"repro/internal/concept"
)

// Check reports whether the lattice is well-formed for the labeling, and
// returns the IDs of the concepts that are not well-formed (empty when
// well-formed). labels[i] is the desired label of object i; every object
// must carry a non-empty label.
func Check(l *concept.Lattice, labels []cable.Label) (ok bool, badConcepts []int) {
	memo := make([]int8, l.Len()) // 0 unknown, 1 ok, 2 bad
	var rec func(id int) bool
	rec = func(id int) bool {
		switch memo[id] {
		case 1:
			return true
		case 2:
			return false
		}
		c := l.Concept(id)
		if uniform(c.Extent, labels) {
			memo[id] = 1
			return true
		}
		good := true
		for _, ch := range l.Children(id) {
			if !rec(ch) {
				good = false
			}
		}
		if good {
			proper := properTraces(l, id)
			if !uniform(proper, labels) {
				good = false
			}
		}
		if good {
			memo[id] = 1
		} else {
			memo[id] = 2
		}
		return good
	}
	for _, c := range l.Concepts() {
		rec(c.ID)
	}
	for id, m := range memo {
		if m == 2 {
			badConcepts = append(badConcepts, id)
		}
	}
	return len(badConcepts) == 0, badConcepts
}

// properTraces returns the objects of a concept that belong to none of its
// children.
func properTraces(l *concept.Lattice, id int) *bitset.Set {
	proper := l.Concept(id).Extent.Clone()
	for _, ch := range l.Children(id) {
		proper.DifferenceWith(l.Concept(ch).Extent)
	}
	return proper
}

// uniform reports whether all objects of the set carry the same label; the
// empty set is uniform.
func uniform(x *bitset.Set, labels []cable.Label) bool {
	first := cable.Unlabeled
	seen := false
	ok := true
	x.Range(func(o int) bool {
		if !seen {
			first, seen = labels[o], true
			return true
		}
		if labels[o] != first {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// MixedConcepts returns, for a non-well-formed lattice, the minimal bad
// concepts: bad concepts none of whose children are bad. These are the
// concepts the user would mark "mixed" and re-cluster with a different FA
// in a Focus session.
func MixedConcepts(l *concept.Lattice, labels []cable.Label) []int {
	_, bad := Check(l, labels)
	badSet := map[int]bool{}
	for _, id := range bad {
		badSet[id] = true
	}
	var minimal []int
	for _, id := range bad {
		hasBadChild := false
		for _, ch := range l.Children(id) {
			if badSet[ch] {
				hasBadChild = true
				break
			}
		}
		if !hasBadChild {
			minimal = append(minimal, id)
		}
	}
	return minimal
}
