package wellformed_test

import (
	"fmt"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/trace"
	"repro/internal/wellformed"
)

// Example demonstrates the Section 4.3 counterexample: a one-state foo*
// specification puts every trace in one concept, so a labeling that
// separates even from odd foo counts cannot be expressed with Cable's
// en-masse labeling.
func Example() {
	// The minimal DFA for foo()* has a single state with one self-loop —
	// the degenerate reference of the paper's example. (The raw Thompson
	// construction has more states, whose extra transitions would already
	// distinguish the traces.)
	ref, err := fa.MustCompile("foo", "foo()*").Minimize()
	if err != nil {
		panic(err)
	}
	traces := []trace.Trace{
		trace.ParseEvents("even", "foo()", "foo()"),
		trace.ParseEvents("odd", "foo()"),
	}
	lattice, err := concept.BuildFromTraces(traces, ref)
	if err != nil {
		panic(err)
	}
	labels := []cable.Label{cable.Good, cable.Bad}
	ok, bad := wellformed.Check(lattice, labels)
	fmt.Println("well-formed:", ok)
	fmt.Println("mixed concepts:", len(bad) > 0)

	// A uniform labeling is always expressible.
	ok, _ = wellformed.Check(lattice, []cable.Label{cable.Good, cable.Good})
	fmt.Println("uniform labeling well-formed:", ok)
	// Output:
	// well-formed: false
	// mixed concepts: true
	// uniform labeling well-formed: true
}
