#!/usr/bin/env bash
# bench.sh — run the lattice-engine and FA-simulator benchmark suites and
# record the results in BENCH_lattice.json and BENCH_fa.json (benchmark
# name → ns/op, allocs/op) so future PRs can track the performance
# trajectory.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go test -benchtime value (default 1s; use e.g. 10x for a
#              quick smoke run)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
TMP="$(mktemp)"
TMP_FA="$(mktemp)"
TMP_BIG="$(mktemp)"
TMP_INCR="$(mktemp)"
TMP_STREAM="$(mktemp)"
TMP_PAR="$(mktemp)"
TMP_SPECLINT="$(mktemp)"
trap 'rm -f "$TMP" "$TMP_FA" "$TMP_BIG" "$TMP_INCR" "$TMP_STREAM" "$TMP_PAR" "$TMP_SPECLINT"' EXIT

# to_json converts `go test -bench` output on stdin to a {name: {ns_per_op,
# allocs_per_op}} JSON object.
to_json() {
    awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns != "") {
        if (count++) printf(",\n")
        printf("  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? "null" : allocs)
    }
}
BEGIN { printf("{\n") }
END   { printf("\n}\n") }
'
}

# Table-2 lattice construction (the paper's headline cost), the
# cover-linking and query micro-benchmarks, and the bitset kernels.
go test -run '^$' -bench 'BenchmarkTable2_Lattice|BenchmarkLatticeOps' \
    -benchmem -benchtime "$BENCHTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkBuild$|BenchmarkLinkCovers|BenchmarkLatticeQueries' \
    -benchmem -benchtime "$BENCHTIME" ./internal/concept | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkBitset|BenchmarkArena' \
    -benchmem -benchtime "$BENCHTIME" ./internal/bitset | tee -a "$TMP"

to_json < "$TMP" > BENCH_lattice.json
echo "wrote BENCH_lattice.json"

# The big-corpus lane: lattice construction at production scale (>10⁴
# synthetic trace classes from internal/xtrace), proving the hot-path wins
# hold two orders of magnitude past the Table 2 fixtures.
go test -run '^$' -bench 'BenchmarkLatticeBig' \
    -benchmem -benchtime "$BENCHTIME" ./internal/concept | tee -a "$TMP_BIG"

to_json < "$TMP_BIG" > BENCH_lattice_big.json
echo "wrote BENCH_lattice_big.json"

# The compiled FA simulator (legacy loop vs compiled plan vs memoized
# classes) and the trace-context construction that rides on it.
go test -run '^$' -bench 'BenchmarkExecuted$|BenchmarkExecutedAll|BenchmarkAccepts' \
    -benchmem -benchtime "$BENCHTIME" ./internal/fa | tee -a "$TMP_FA"
go test -run '^$' -bench 'BenchmarkTraceContext' \
    -benchmem -benchtime "$BENCHTIME" ./internal/concept | tee -a "$TMP_FA"

to_json < "$TMP_FA" > BENCH_fa.json
echo "wrote BENCH_fa.json"

# Incremental maintenance: one AddTraceCtx against a built lattice vs the
# full BuildCtx rebuild it replaces, plus the remove paths. The add/rebuild
# ratio is the headline number (the server's add-traces endpoint rides on
# it); the acceptance bar is >=10x.
go test -run '^$' -bench 'BenchmarkIncremental' \
    -benchmem -benchtime "$BENCHTIME" ./internal/concept | tee -a "$TMP_INCR"

to_json < "$TMP_INCR" > BENCH_incremental.json
echo "wrote BENCH_incremental.json"

# Streaming verification: the per-event online-check kernel (steady
# state, violation path, 1000 checkers sharing one plan, NDJSON decode)
# and the end-to-end pump through cabled's HTTP surface with 1000 open
# streams fed xtrace-generated workloads.
go test -run '^$' -bench 'BenchmarkFeed$|BenchmarkFeedViolations|BenchmarkManyStreams|BenchmarkIngest' \
    -benchmem -benchtime "$BENCHTIME" ./internal/stream | tee -a "$TMP_STREAM"
go test -run '^$' -bench 'BenchmarkStreamPump' \
    -benchmem -benchtime "$BENCHTIME" ./internal/server | tee -a "$TMP_STREAM"

to_json < "$TMP_STREAM" > BENCH_stream.json
echo "wrote BENCH_stream.json"

# The multi-core lane: worker-scaling curves (1/2/4/8 workers as w1..w8
# sub-benchmarks) for the phases that honor WithWorkers — the Godin
# insertion scan inside Build, cover linking, and the incremental add. The
# speedup only shows on a multi-core box, so the lane raises GOMAXPROCS to
# at least 8 when the hardware has the cores; on the 1-core reference
# container the curves are flat and only the determinism property is
# exercised (the file is still written so BENCH_summary.json is stable).
CORES="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
PAR_PROCS="$CORES"
if [ "$CORES" -lt 8 ]; then PAR_PROCS="$CORES"; else PAR_PROCS=8; fi
if [ "$CORES" -gt 1 ]; then
    echo "multi-core lane: GOMAXPROCS=$PAR_PROCS ($CORES cores online)"
else
    echo "multi-core lane: single core online; scaling curves will be flat"
fi
GOMAXPROCS="$PAR_PROCS" go test -run '^$' -bench 'BenchmarkParallel|BenchmarkSortInts' \
    -benchmem -benchtime "$BENCHTIME" ./internal/concept | tee -a "$TMP_PAR"

to_json < "$TMP_PAR" > BENCH_parallel.json
echo "wrote BENCH_parallel.json"

# The semantic-analysis engine (internal/fa/lang): subset-construction
# determinization, Hopcroft minimization, and the witness-producing
# inclusion check, on the X11-scale corpus union and the bigger
# program-model union.
go test -run '^$' -bench 'BenchmarkLangDeterminize|BenchmarkLangMinimize|BenchmarkLangInclusion' \
    -benchmem -benchtime "$BENCHTIME" ./internal/fa/lang | tee -a "$TMP_SPECLINT"

to_json < "$TMP_SPECLINT" > BENCH_speclint.json
echo "wrote BENCH_speclint.json"

# One merged file keyed by suite, so trend tooling reads a single
# artifact instead of stitching the per-suite files.
{
    echo '{'
    echo '  "lattice":'
    sed 's/^/    /' BENCH_lattice.json
    echo '  ,'
    echo '  "lattice_big":'
    sed 's/^/    /' BENCH_lattice_big.json
    echo '  ,'
    echo '  "fa":'
    sed 's/^/    /' BENCH_fa.json
    echo '  ,'
    echo '  "incremental":'
    sed 's/^/    /' BENCH_incremental.json
    echo '  ,'
    echo '  "stream":'
    sed 's/^/    /' BENCH_stream.json
    echo '  ,'
    echo '  "parallel":'
    sed 's/^/    /' BENCH_parallel.json
    echo '  ,'
    echo '  "speclint":'
    sed 's/^/    /' BENCH_speclint.json
    echo '}'
} > BENCH_summary.json
echo "wrote BENCH_summary.json"

# Phase-attributed metrics snapshot next to the raw numbers: where a
# Table-2 run spends its time (trace parse, FA sim, context build, lattice
# build, cover linking), not just how long the benchmarks took.
SNAP="BENCH_obs_snapshot.txt"
go run ./cmd/paper -table 2 -metrics >/dev/null 2> "$SNAP"
echo "wrote $SNAP"
