// Minedebug: debugging a mined specification, following Section 2.2.
//
// Strauss mines a specification from whole-program runs that contain
// errors, so the mined FA accepts erroneous scenarios. We cluster the
// miner's own scenario traces with the mined FA as the reference, label
// concepts, and rerun the miner's back end on the traces labeled good —
// using two distinct good labels ("good fopen", "good popen") to stop the
// learner from generalizing across the two protocols.
//
// Run with: go run ./examples/minedebug
package main

import (
	"fmt"
	"log"

	"repro/internal/cable"
	"repro/internal/core"
	"repro/internal/mine"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

func main() {
	stdio := specs.Stdio()

	// Generate whole-program runs: interleaved protocol instances over
	// distinct file objects, with noise calls, ~20% erroneous.
	gen := xtrace.Generator{Model: stdio.Model, Seed: 7}
	runs, _ := gen.Runs(50, 3)
	fmt.Printf("workload: %d program runs\n", len(runs))

	// Mine. The front end slices each run into per-object scenario traces;
	// the back end learns an FA from all of them — including the bad ones.
	miner := mine.Miner{FrontEnd: mine.FrontEnd{
		Seeds:         stdio.Model.SeedOps(),
		FollowDerived: true,
	}}
	mined, scenarios, err := miner.Mine("stdio-mined", runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined: %d scenario traces (%d unique) -> FA with %d states, %d transitions\n",
		scenarios.Total(), scenarios.NumClasses(), mined.NumStates(), mined.NumTransitions())
	badTrace := trace.ParseEvents("", "X = popen()", "fclose(X)")
	fmt.Printf("the mined spec accepts the erroneous %q: %v\n\n", badTrace.Key(), mined.Accepts(badTrace))

	// Debug: the mined FA itself is the reference for clustering.
	session, err := core.DebugMined(mined, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	lattice := session.Lattice()
	fmt.Printf("lattice: %d concepts\n", lattice.Len())

	// Label concepts top-down by their shared transitions, the same
	// workflow a human follows with "Show transitions". Scenarios pairing
	// an open with its matching close are good; mismatches and leaks bad.
	for _, id := range lattice.TopDownOrder() {
		unl := cable.SelectUnlabeled()
		sel, err := session.Select(id, unl)
		if err != nil {
			log.Fatal(err)
		}
		if len(sel) == 0 {
			continue
		}
		shared, err := session.ShowTransitions(id, unl)
		if err != nil {
			log.Fatal(err)
		}
		ops := map[string]bool{}
		for _, tr := range shared {
			ops[tr.Label.Op] = true
		}
		switch {
		case ops["fopen"] && ops["fclose"] && !ops["pclose"]:
			mustLabel(session.LabelTraces(id, unl, cable.Label("good fopen")))
		case ops["popen"] && ops["pclose"] && !ops["fclose"]:
			mustLabel(session.LabelTraces(id, unl, cable.Label("good popen")))
		}
	}
	// What remains (open without close, crossed closes) is erroneous.
	mustLabel(session.LabelTraces(lattice.Top(), cable.SelectUnlabeled(), cable.Bad))
	fmt.Printf("labels in use: %v\n", session.UsedLabels())
	for _, l := range session.UsedLabels() {
		fmt.Printf("  %-12q %3d trace(s)\n", string(l), session.TracesWith(l).Total())
	}

	// Step 3: rerun the back end per good label and union the results.
	fixed, err := core.RelearnGood(session, miner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrelearned spec: %d states, %d transitions\n", fixed.NumStates(), fixed.NumTransitions())

	probes := []trace.Trace{
		trace.ParseEvents("", "X = fopen()", "fclose(X)"),
		trace.ParseEvents("", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("", "X = popen()", "fclose(X)"),
		trace.ParseEvents("", "X = fopen()", "pclose(X)"),
		trace.ParseEvents("", "X = fopen()"),
	}
	fmt.Println("verdicts of the relearned specification:")
	for _, p := range probes {
		verdict := "rejected"
		if fixed.Accepts(p) {
			verdict = "accepted"
		}
		fmt.Printf("  %-45s %s\n", p.Key(), verdict)
	}

	// The split good labels prevented cross-protocol generalization: had we
	// used a single "good" label, the learner could have re-merged fopen
	// and popen states and reintroduced the bug (Section 2.2's
	// overgeneralization discussion).
	single := relearnWithSingleLabel(session, miner)
	if single != nil && single.Accepts(badTrace) {
		fmt.Printf("\n(with a single good label the bug would return: %q accepted=%v)\n",
			badTrace.Key(), single.Accepts(badTrace))
	}
}

// mustLabel aborts on a labeling error (impossible with in-range IDs).
func mustLabel(n int, err error) int {
	if err != nil {
		log.Fatal(err)
	}
	return n
}

// relearnWithSingleLabel redoes Step 3 with one undifferentiated good label
// to illustrate the overgeneralization risk; nil if relearning fails.
func relearnWithSingleLabel(session *core.Session, miner mine.Miner) interface {
	Accepts(trace.Trace) bool
} {
	merged := session.TracesWith(cable.Label("good fopen"))
	merged.AddAll(session.TracesWith(cable.Label("good popen")))
	spec, err := miner.Relearn("single-good", merged)
	if err != nil {
		return nil
	}
	return spec
}
