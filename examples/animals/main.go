// Animals: the introductory concept-analysis example of Figures 9 and 10
// (after Michael Siff's thesis) — a context of animals and adjectives, its
// derivation operators, and its concept lattice.
//
// Run with: go run ./examples/animals
package main

import (
	"fmt"
	"os"

	"repro/internal/bitset"
	"repro/internal/concept"
	"repro/internal/exp"
)

func main() {
	ctx := exp.AnimalsContext()
	fmt.Println("Figure 9: the context")
	fmt.Println(ctx)

	// The derivation operators σ and τ.
	dogs := bitset.FromSlice([]int{1, 2}) // dog, gibbon
	shared := ctx.Sigma(dogs)
	fmt.Print("σ({dog, gibbon}) = { ")
	shared.Range(func(a int) bool {
		fmt.Printf("%s ", ctx.AttributeName(a))
		return true
	})
	fmt.Println("}")
	intelligent := bitset.FromSlice([]int{2}) // intelligent
	fmt.Print("τ({intelligent}) = { ")
	ctx.Tau(intelligent).Range(func(o int) bool {
		fmt.Printf("%s ", ctx.ObjectName(o))
		return true
	})
	fmt.Println("}")
	fmt.Printf("similarity of {dog, gibbon}: %d shared attribute(s)\n\n", ctx.Similarity(dogs))

	// Figure 10: the concept lattice, with reduced labels.
	lattice := concept.Build(ctx)
	fmt.Printf("Figure 10: the concept lattice (%d concepts)\n", lattice.Len())
	fmt.Println(lattice)

	// Concepts get smaller but more similar as one moves down (Section 3.1).
	top, bottom := lattice.Top(), lattice.Bottom()
	fmt.Printf("top: %d objects share %d attributes; bottom: %d objects share %d attributes\n",
		lattice.Concept(top).Extent.Len(), lattice.Concept(top).Intent.Len(),
		lattice.Concept(bottom).Extent.Len(), lattice.Concept(bottom).Intent.Len())

	// Meets and joins exist for every pair: it is a complete lattice.
	a := lattice.ObjectConcept(0) // γ(cat)
	b := lattice.ObjectConcept(3) // γ(dolphin)
	meet, _ := lattice.Meet(a, b)
	join, _ := lattice.Join(a, b)
	fmt.Printf("meet(γcat, γdolphin) = c%d, join = c%d\n", meet, join)

	// DOT for rendering with Graphviz.
	fmt.Println("\nDOT (pipe to `dot -Tpng`):")
	if err := lattice.WriteDot(os.Stdout, "animals"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
