// Program: the full circle from a program to a debugged specification.
//
// A small imperative program (internal/prog) plays the role of the
// paper's analyzed software. We use it both ways the paper does:
//
//  1. statically — compile its control flow to an event automaton and
//     check it against a specification with the product-based verifier;
//  2. dynamically — execute it many times, mine a specification from the
//     runs with Strauss, debug the mined spec's scenario traces with
//     concept analysis, and relearn from the traces labeled good.
//
// Run with: go run ./examples/program
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cable"
	"repro/internal/core"
	"repro/internal/mine"
	"repro/internal/prog"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/verify"
)

const src = `
prog editor {
  // An editor buffers its file I/O; sometimes it leaks the handle, and
  // one code path closes a pipe with the wrong call.
  X := fopen();
  loop { fread(X); }
  opt  { fwrite(X); }
  choice { fclose(X); } or { skip; }
  Y := popen();
  fread(Y);
  choice { pclose(Y); } or { fclose(Y); }
}
`

func main() {
	p, err := prog.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("the program under analysis:\n\n", p, "\n")

	// --- Static: the specification is per-object, so project the program
	// onto each variable's protocol and verify each projection.
	spec := specs.Stdio().FA
	for _, v := range p.Vars() {
		model, err := p.Project(v).Compile()
		if err != nil {
			log.Fatal(err)
		}
		conforms, err := verify.Conforms(model, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("static check of %s's protocol against %q: conforms=%v\n", v, spec.Name(), conforms)
		violations, err := verify.Static(model, spec, 6, 4)
		if err != nil {
			log.Fatal(err)
		}
		for _, viol := range violations {
			fmt.Printf("  %s\n", viol)
		}
	}

	// --- Dynamic: execute, mine, debug, relearn.
	runs := p.Runs(rand.New(rand.NewSource(3)), 80, prog.ExecOptions{})
	miner := mine.Miner{FrontEnd: mine.FrontEnd{Seeds: []string{"fopen", "popen"}, FollowDerived: true}}
	mined, scenarios, err := miner.Mine("editor-mined", runs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmined from %d runs: %d scenario traces (%d unique), FA with %d states\n",
		len(runs), scenarios.Total(), scenarios.NumClasses(), mined.NumStates())

	session, err := core.DebugMined(mined, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	// Label with the correct spec as the oracle (standing in for the
	// expert's judgment).
	for i, t := range session.Representatives() {
		label := cable.Bad
		if spec.Accepts(t) {
			label = cable.Good
		}
		if err := session.LabelTrace(i, label); err != nil {
			log.Fatal(err)
		}
	}
	fixed, err := core.RelearnGood(session, miner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("debugged spec: %d states, %d transitions\n", fixed.NumStates(), fixed.NumTransitions())
	for _, probe := range []trace.Trace{
		trace.ParseEvents("", "X = fopen()", "fread(X)", "fclose(X)"),
		trace.ParseEvents("", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("", "X = popen()", "fread(X)", "fclose(X)"),
		trace.ParseEvents("", "X = fopen()"),
	} {
		verdict := "rejected"
		if fixed.Accepts(probe) {
			verdict = "accepted"
		}
		fmt.Printf("  %-45s %s\n", probe.Key(), verdict)
	}
}
