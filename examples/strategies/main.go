// Strategies: comparing the cost of the labeling strategies of Section 4.2
// on one specification's debugging problem — a single row of Table 3, with
// commentary.
//
// Run with: go run ./examples/strategies [-spec XtFree] [-n 900]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/specs"
)

func main() {
	var (
		name = flag.String("spec", "XtFree", "specification name (see Table 1)")
		n    = flag.Int("n", 0, "scenario draws (0 = evaluation default)")
		seed = flag.Int64("seed", 20030407, "workload seed")
	)
	flag.Parse()
	spec, ok := specs.ByName(*name)
	if !ok {
		log.Fatalf("unknown spec %q", *name)
	}
	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.RandomTrials = 256
	if *n > 0 {
		cfg.Scale = func(string) int { return *n }
	}

	fmt.Printf("spec %s: %s\n", spec.Name, spec.Description)
	fmt.Printf("workload model:\n%s\n", spec.Model.Describe())

	e, err := exp.Prepare(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenarios: %d (%d unique classes)\n", e.Set.Total(), e.Set.NumClasses())
	fmt.Printf("reference FA (%s): %d states, %d transitions\n",
		e.RefKind, e.Ref.NumStates(), e.Ref.NumTransitions())
	fmt.Printf("concept lattice: %d concepts, built in %v\n\n", e.Lattice.Len(), e.BuildTime)

	st, err := e.RunStrategies(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cost of labeling (total Cable operations = inspections + labelings):")
	fmt.Printf("  %-22s %d\n", "Baseline (no Cable):", st.Baseline)
	fmt.Printf("  %-22s %d\n", "Expert:", st.Expert)
	fmt.Printf("  %-22s %d\n", "Top-down:", st.TopDown)
	fmt.Printf("  %-22s %d\n", "Bottom-up:", st.BottomUp)
	fmt.Printf("  %-22s %.1f (mean of %d trials)\n", "Random:", st.RandomMean, cfg.RandomTrials)
	if st.Optimal >= 0 {
		fmt.Printf("  %-22s %d\n", "Optimal:", st.Optimal)
	} else {
		fmt.Printf("  %-22s — (search budget exceeded, as for the paper's four largest specs)\n", "Optimal:")
	}

	fmt.Println()
	ratio := float64(st.Expert) / float64(st.Baseline)
	fmt.Printf("the expert needed %.0f%% of the decisions that trace-by-trace labeling needs\n", 100*ratio)
	fmt.Println("(the paper's headline case, XtFree-scale: 28 decisions with Cable vs 224 without)")
}
