// Focus: re-clustering a mixed concept with the Section 4.1 templates.
//
// The XSetFont protocol is order-sensitive: "create; draw-text; set-font;
// free" executes the same set of operations as the correct "create;
// set-font; draw-text; free", so an unordered reference FA lumps correct
// and erroneous traces into the same concepts (the lattice is not
// well-formed for the desired labeling, Section 4.3). A Focus sub-session
// with the seed-order template — which distinguishes events before the
// XSetFont call from events after it — separates them.
//
// Run with: go run ./examples/focus
package main

import (
	"fmt"
	"log"

	"repro/internal/cable"
	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/wellformed"
	"repro/internal/xtrace"
)

func main() {
	spec, _ := specs.ByName("XSetFont")
	gen := xtrace.Generator{Model: spec.Model, Seed: 13}
	set, truth := gen.ScenarioSet(120)
	fmt.Printf("workload: %d scenario traces (%d unique)\n", set.Total(), set.NumClasses())

	// Cluster with the UNORDERED reference FA: order information is lost.
	unordered := fa.Unordered(set.Alphabet())
	session, err := cable.NewSession(set, unordered)
	if err != nil {
		log.Fatal(err)
	}
	groundTruth := truthLabels(session, truth)
	ok, bad := wellformed.Check(session.Lattice(), groundTruth)
	fmt.Printf("unordered lattice: %d concepts; well-formed for the desired labeling: %v (mixed concepts: %v)\n",
		session.Lattice().Len(), ok, bad)

	// Find a mixed concept: correct and erroneous traces sharing all
	// transitions.
	mixed := wellformed.MixedConcepts(session.Lattice(), groundTruth)
	if len(mixed) == 0 {
		log.Fatal("expected a mixed concept under the unordered reference")
	}
	id := mixed[0]
	fmt.Printf("\nconcept c%d is mixed; its traces:\n", id)
	conceptTraces, err := session.ShowTraces(id, cable.SelectAll())
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range conceptTraces {
		status := "bad "
		if truth[t.Key()] {
			status = "good"
		}
		fmt.Printf("  [%s] %s\n", status, t.Key())
	}

	// Focus with the seed-order template on XSetFont: events before the
	// first XSetFont are distinguished from events after it.
	seed := event.MustParse("XSetFont(X)")
	sub, err := session.Focus(id, cable.SelectAll(), fa.SeedOrder(alphabetOf(session, id), seed))
	if err != nil {
		log.Fatal(err)
	}
	ss := sub.Session()
	subTruth := truthLabels(ss, truth)
	ok, _ = wellformed.Check(ss.Lattice(), subTruth)
	fmt.Printf("\nfocused (seed-order on %s): %d concepts; well-formed: %v\n", seed, ss.Lattice().Len(), ok)

	// Now the good and bad traces separate: label them concept by concept.
	for _, cid := range ss.Lattice().TopDownOrder() {
		unl, err := ss.Select(cid, cable.SelectUnlabeled())
		if err != nil {
			log.Fatal(err)
		}
		if len(unl) == 0 {
			continue
		}
		// Label when the ground truth is uniform over the remainder — the
		// automated stand-in for a human reading the summary.
		label := cable.Label("")
		uniform := true
		for _, o := range unl {
			want := cable.Bad
			if truth[ss.Representatives()[o].Key()] {
				want = cable.Good
			}
			if label == "" {
				label = want
			} else if label != want {
				uniform = false
			}
		}
		if uniform {
			if _, err := ss.LabelTraces(cid, cable.SelectUnlabeled(), label); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("focused labeling complete: %v\n", ss.Done())

	// Ending the focus merges the labels back into the parent session.
	merged, err := sub.End()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d label(s) back into the parent session\n", merged)
	good := session.TracesWith(cable.Good).Total()
	badN := session.TracesWith(cable.Bad).Total()
	fmt.Printf("parent session now has %d good and %d bad trace(s) from this concept\n", good, badN)
}

func truthLabels(s *cable.Session, truth xtrace.Labeling) []cable.Label {
	out := make([]cable.Label, s.NumTraces())
	for i := range out {
		if truth[s.Representatives()[i].Key()] {
			out[i] = cable.Good
		} else {
			out[i] = cable.Bad
		}
	}
	return out
}

func alphabetOf(s *cable.Session, id int) []event.Event {
	traces, err := s.ShowTraces(id, cable.SelectAll())
	if err != nil {
		log.Fatal(err)
	}
	return trace.NewSet(traces...).Alphabet()
}
