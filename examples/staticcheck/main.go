// Staticcheck: the static flavor of Section 2.1's verification tool plus
// surprise ranking.
//
// Instead of checking recorded traces, the verifier checks a program MODEL
// (an FA over the same events) exhaustively: the product of the program
// with the specification's complement yields the shortest behaviours the
// program can exhibit that the specification rejects. The reports are then
// ranked by statistical surprise against a trace corpus — the related-work
// combination the paper calls complementary ("ranking tells the user what
// reports to inspect first, while clustering helps the user avoid
// inspecting redundant reports").
//
// Run with: go run ./examples/staticcheck
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/rank"
	"repro/internal/specs"
	"repro/internal/verify"
	"repro/internal/xtrace"
)

func main() {
	stdio := specs.Stdio()

	// The program model: every behaviour the workload templates allow,
	// correct and erroneous alike.
	program, err := specs.ProgramFA("stdio", stdio.Model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program model: %d states, %d transitions\n", program.NumStates(), program.NumTransitions())

	// Exact conformance check first.
	ok, err := verify.Conforms(program, stdio.FA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program conforms to %q: %v\n\n", stdio.FA.Name(), ok)

	// Enumerate the shortest counterexamples.
	violations, err := verify.Static(program, stdio.FA, 8, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static verifier: %d violation behaviours up to length 8\n", len(violations))
	for i, v := range violations {
		if i == 5 {
			fmt.Printf("  ... (%d more)\n", len(violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}

	// Rank the reports against a dynamic corpus: frequent behaviours rank
	// low (they smell like spec gaps), rare ones high (they smell like
	// real bugs).
	gen := xtrace.Generator{Model: stdio.Model, Seed: 1}
	corpus, _ := gen.ScenarioSet(400)
	ranker, err := rank.New(corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranked (most suspicious first):")
	for i, rep := range ranker.Rank(violations) {
		if i == 8 {
			fmt.Println("  ...")
			break
		}
		surprise := "∞ (never seen dynamically)"
		if !math.IsInf(rep.Surprise, 1) {
			surprise = fmt.Sprintf("%.2f bits/event", rep.Surprise)
		}
		fmt.Printf("  #%d %-55s %s\n", i+1, rep.Trace.Key(), surprise)
	}
}
