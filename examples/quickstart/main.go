// Quickstart: debugging a temporal specification by testing it, following
// Section 2.1 of the paper step by step.
//
// The buggy specification (Figure 1) allows fclose to close file pointers
// that popen produced. We check it against a synthetic stdio workload,
// cluster the resulting violation traces with concept analysis, label whole
// concepts good or bad, and fix the specification so it accepts the traces
// labeled good (Figure 6).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/cable"
	"repro/internal/core"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

func main() {
	// The workload: scenario traces a verifier would extract from real
	// programs, most correct, some erroneous (leaks, wrong closes).
	stdio := specs.Stdio()
	gen := xtrace.Generator{Model: stdio.Model, Seed: 42}
	scenarios, _ := gen.ScenarioSet(150)
	fmt.Printf("workload: %d scenario traces (%d unique)\n", scenarios.Total(), scenarios.NumClasses())

	// Step 0: run the verifier. The buggy spec reports violations — some
	// are real program errors, some are correct traces the spec wrongly
	// rejects (popen/pclose pairs).
	buggy := specs.FigureOneFA()
	session, violations, err := core.DebugViolations(buggy, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verifier: %d violation traces, %d unique classes\n\n", len(violations), session.NumTraces())

	// Step 1 happened inside DebugViolations: a reference FA was learned
	// from the violations and the concept lattice was built.
	lattice := session.Lattice()
	fmt.Printf("concept lattice: %d concepts over %d transitions\n",
		lattice.Len(), session.Ref().NumTransitions())

	// Step 2a: label concepts. A human would inspect summaries; this demo
	// recognizes the popen/pclose protocol by its transitions, exactly the
	// "Show transitions" workflow.
	for _, id := range lattice.TopDownOrder() {
		state, err := session.ConceptState(id)
		if err != nil {
			log.Fatal(err)
		}
		if state == cable.StateFullyLabeled {
			continue
		}
		shared, err := session.ShowTransitions(id, cable.SelectUnlabeled())
		if err != nil {
			log.Fatal(err)
		}
		var ops []string
		for _, t := range shared {
			ops = append(ops, t.Label.Op)
		}
		joined := strings.Join(ops, ",")
		// Traces that execute both popen and pclose are correct: the spec,
		// not the programs, is wrong about them.
		if strings.Contains(joined, "popen") && strings.Contains(joined, "pclose") {
			n, err := session.LabelTraces(id, cable.SelectUnlabeled(), cable.Good)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  concept c%d shares [%s]: labeled %d class(es) good\n", id, joined, n)
		}
	}
	// Everything else genuinely violates the stdio protocol.
	n, err := session.LabelTraces(lattice.Top(), cable.SelectUnlabeled(), cable.Bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  remaining %d class(es) labeled bad\n\n", n)

	// Step 2b: check the labeling by viewing an FA for the good traces.
	goodFA, err := session.ShowFA(lattice.Top(), cable.SelectLabel(cable.Good))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FA inferred from the traces labeled good:")
	fmt.Println(goodFA)

	// Step 3: fix the specification.
	fixed, err := core.FixSpec(buggy, session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fixed specification:")
	fmt.Println(fixed)

	// The fix in action: the paired pclose is now legal, and the leak is
	// still rejected.
	for _, probe := range []struct {
		t    trace.Trace
		want string
	}{
		{trace.ParseEvents("", "X = popen()", "pclose(X)"), "accepted: was wrongly rejected"},
		{trace.ParseEvents("", "X = fopen()", "fread(X)", "fclose(X)"), "accepted: always was correct"},
		{trace.ParseEvents("", "X = fopen()", "fread(X)"), "rejected: leak, still an error"},
	} {
		fmt.Printf("  %-45s -> accepted=%v (%s)\n", probe.t.Key(), fixed.Accepts(probe.t), probe.want)
	}

	// One gap remains, inherent to debugging by testing: the buggy spec
	// ACCEPTS "X = popen(); fclose(X)", so the verifier never reported it
	// and this workflow could not remove it. Tightening an overly
	// permissive spec is the mining workflow's job — see
	// examples/minedebug, where that trace is labeled bad and relearning
	// excludes it.
	leftover := trace.ParseEvents("", "X = popen()", "fclose(X)")
	fmt.Printf("\nstill accepted (never reported as a violation): %q -> %v\n",
		leftover.Key(), fixed.Accepts(leftover))
}
