# Developer entry points. `make ci` is the gate a CI job should run.

GO ?= go

.PHONY: ci vet fmt cablevet speclint speclint-corpus build test race bench-smoke bench obs-smoke fuzz-smoke cabled-smoke snapshot-smoke stream-smoke godin-multicore

ci: fmt vet cablevet speclint speclint-corpus build race bench-smoke obs-smoke fuzz-smoke cabled-smoke snapshot-smoke stream-smoke godin-multicore

vet:
	$(GO) vet ./...

# gofmt gate: fail if any tracked source (testdata golden packages are
# deliberately excluded — `// want` comments pin exact columns) needs
# reformatting.
fmt:
	@out="$$(gofmt -l . | grep -v testdata || true)"; \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The repo's own invariant suite (internal/analysis): build the cablevet
# multichecker and run it over every package through go vet's unitchecker
# protocol. Findings fail the build; see DESIGN.md for the rule catalogue
# and the //cablevet:ignore suppression syntax.
cablevet:
	$(GO) build -o bin/cablevet ./cmd/cablevet
	$(GO) vet -vettool=$$PWD/bin/cablevet ./...

# The specification-level counterpart: every shipped paper spec must lint
# clean — structural and semantic rules plus the cross-spec
# duplicate/subsumption pass (internal/speclint via cable lint).
speclint:
	$(GO) run ./cmd/cable lint -corpus

# Witness stability: every seeded buggy spec must yield its pinned
# separating witness against the known-correct FA
# (internal/speclint/testdata/corpus_witnesses.golden; regenerate with
# `go test ./internal/speclint -run TestCorpusWitnessGolden -update`).
speclint-corpus:
	$(GO) test -run 'TestCorpusWitnessGolden|TestShippedCorpusSemanticClean' -count=1 ./internal/speclint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Includes TestSimSharedAcrossGoroutines: one compiled simulation plan
# hammered from 8 goroutines across every entry point.
race:
	$(GO) test -race ./...

# A one-iteration pass over the lattice-engine and compiled-simulator
# benchmarks: catches benchmark-code rot without paying for stable
# measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLinkCovers|BenchmarkLatticeQueries|BenchmarkLatticeBig|BenchmarkBitset|BenchmarkArena|BenchmarkIncremental|BenchmarkParallel|BenchmarkSortInts' \
	    -benchtime 1x ./internal/concept ./internal/bitset
	$(GO) test -run '^$$' -bench 'BenchmarkExecuted|BenchmarkExecutedAll|BenchmarkAccepts|BenchmarkTraceContext' \
	    -benchtime 1x ./internal/fa ./internal/concept
	$(GO) test -run '^$$' -bench 'BenchmarkFeed|BenchmarkManyStreams|BenchmarkIngest|BenchmarkStreamPump' \
	    -benchtime 1x ./internal/stream ./internal/server

# Run cmd/paper with -metrics and assert the snapshot attributes time to
# the pipeline phases (a span line for lattice.build must be present).
obs-smoke:
	$(GO) run ./cmd/paper -table 2 -metrics 2>&1 >/dev/null | tee /dev/stderr \
	    | grep -q '^span    lattice.build '

# Short fuzz passes over the three text-format round-trip properties
# (traces, automata, Burmeister contexts) and the two semantic-engine
# differential properties (determinization vs. the NFA, complement and
# self-inclusion vs. the bounded oracle).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzTraceRoundTrip$$' -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzFAIO$$' -fuzztime 5s ./internal/fa
	$(GO) test -run '^$$' -fuzz '^FuzzConceptIO$$' -fuzztime 5s ./internal/concept
	$(GO) test -run '^$$' -fuzz '^FuzzDeterminize$$' -fuzztime 5s ./internal/fa/lang
	$(GO) test -run '^$$' -fuzz '^FuzzComplementInclusion$$' -fuzztime 5s ./internal/fa/lang

# Build the real cabled binary, exercise the API over TCP, and assert a
# clean SIGTERM shutdown while a lattice build is in flight. The server
# packages also run under the race detector (they are the concurrent
# surface of the repo).
cabled-smoke:
	$(GO) test -race ./internal/server/... ./cmd/cabled

# Crash-safety acceptance: build the real binary, start it with
# -snapshot-dir, create and label a session over TCP, SIGKILL the process
# (no drain), restart on the same directory, and assert the session comes
# back with every label intact.
snapshot-smoke:
	$(GO) test -run 'TestSnapshotKillRestart|TestSessionPersistRoundTrip' -count=1 \
	    ./cmd/cabled ./internal/server

# Streaming acceptance: the real cabled binary carries 100 open streams
# through a SIGTERM drain and a restart (stream frontiers and violation
# classes persisted), and the in-process soak drives 1000 concurrent
# streams under the race detector with a flat live heap.
stream-smoke:
	$(GO) test -race -run 'TestStreamSmoke|TestStreamSoak' -count=1 \
	    ./cmd/cabled ./internal/server

# Multi-core determinism: the parallel Godin and linkCovers properties are
# only meaningful when goroutines actually interleave, and the 1-core
# reference container never schedules them concurrently. Force 4 procs so
# CI exercises real cross-core interleavings of the classify/merge path.
godin-multicore:
	GOMAXPROCS=4 $(GO) test -race -count=1 \
	    -run 'TestPropParallelGodinDeterministic|TestParallelGodinDeterministicBigCorpus|TestGodinPrunedMatchesLegacy|TestPropParallelLinkCoversDeterministic|TestBigCorpusParallelDeterministic' \
	    ./internal/concept

# Full measured run; writes BENCH_lattice.json (name → ns/op, allocs/op)
# and BENCH_obs_snapshot.txt (phase-attributed metrics snapshot).
bench:
	scripts/bench.sh
