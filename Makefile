# Developer entry points. `make ci` is the gate a CI job should run.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench obs-smoke fuzz-smoke cabled-smoke

ci: vet build race bench-smoke obs-smoke fuzz-smoke cabled-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Includes TestSimSharedAcrossGoroutines: one compiled simulation plan
# hammered from 8 goroutines across every entry point.
race:
	$(GO) test -race ./...

# A one-iteration pass over the lattice-engine and compiled-simulator
# benchmarks: catches benchmark-code rot without paying for stable
# measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLinkCovers|BenchmarkLatticeQueries|BenchmarkBitset' \
	    -benchtime 1x ./internal/concept ./internal/bitset
	$(GO) test -run '^$$' -bench 'BenchmarkExecuted|BenchmarkExecutedAll|BenchmarkAccepts|BenchmarkTraceContext' \
	    -benchtime 1x ./internal/fa ./internal/concept

# Run cmd/paper with -metrics and assert the snapshot attributes time to
# the pipeline phases (a span line for lattice.build must be present).
obs-smoke:
	$(GO) run ./cmd/paper -table 2 -metrics 2>&1 >/dev/null | tee /dev/stderr \
	    | grep -q '^span    lattice.build '

# A short fuzz pass over the trace round-trip property.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzTraceRoundTrip$$' -fuzztime 10s ./internal/trace

# Build the real cabled binary, exercise the API over TCP, and assert a
# clean SIGTERM shutdown while a lattice build is in flight. The server
# packages also run under the race detector (they are the concurrent
# surface of the repo).
cabled-smoke:
	$(GO) test -race ./internal/server/... ./cmd/cabled

# Full measured run; writes BENCH_lattice.json (name → ns/op, allocs/op)
# and BENCH_obs_snapshot.txt (phase-attributed metrics snapshot).
bench:
	scripts/bench.sh
