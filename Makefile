# Developer entry points. `make ci` is the gate a CI job should run.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A one-iteration pass over the lattice-engine benchmarks: catches
# benchmark-code rot without paying for stable measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLinkCovers|BenchmarkLatticeQueries|BenchmarkBitset' \
	    -benchtime 1x ./internal/concept ./internal/bitset

# Full measured run; writes BENCH_lattice.json (name → ns/op, allocs/op).
bench:
	scripts/bench.sh
