package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/fa"
	"repro/internal/scanio"
	"repro/internal/server/apiv1"
	"repro/internal/trace"
)

// TestCabledSmoke builds the real binary, runs it, exercises the create →
// label → export path over TCP, then delivers SIGTERM while a large
// lattice build is in flight and requires a clean exit within the grace
// period. This is the deployment-shaped check the in-process httptest
// suite cannot provide.
func TestCabledSmoke(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM delivery is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "cabled")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-metrics",
		"-shutdown-timeout", "5s", "-request-timeout", "1m")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stderr line announces the bound address.
	sc := scanio.NewScanner(stderr)
	var addr string
	if sc.Scan() {
		line := sc.Text()
		if i := strings.LastIndex(line, " "); i >= 0 {
			addr = line[i+1:]
		}
	}
	if addr == "" {
		t.Fatalf("no listen address announced: %v", sc.Err())
	}
	rest := &bytes.Buffer{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			fmt.Fprintln(rest, sc.Text())
		}
	}()
	base := "http://" + addr

	// Quick functional pass with a small session.
	small := fixtureJSON(t, 6)
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	var created apiv1.CreateSessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(apiv1.LabelRequest{Concept: &created.Top, Selector: &apiv1.Selector{Mode: "all"}, Label: "good"})
	resp, err = http.Post(base+"/v1/sessions/"+created.SessionID+"/label", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("label: status %d", resp.StatusCode)
	}

	// Fire a big build and SIGTERM mid-flight: the request context is
	// cancelled, and the process must drain within its grace period.
	big := fixtureJSON(t, 22) // C(22,3) = 1540 classes
	buildErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(big))
		if err == nil {
			resp.Body.Close()
		}
		buildErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the build start
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stderr to EOF before Wait: Wait closes the pipe and would
	// discard any buffered-but-unread shutdown output.
	exit := make(chan error, 1)
	go func() { <-done; exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("cabled exited uncleanly: %v\n%s", err, rest.String())
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("cabled did not shut down within the grace period")
	}
	<-buildErr
	out := rest.String()
	if !strings.Contains(out, "shutting down") || !strings.Contains(out, "cabled: stopped") {
		t.Errorf("shutdown banner missing from stderr:\n%s", out)
	}
	// -metrics dumps a snapshot on exit; the request counters must be in it.
	if !strings.Contains(out, "server.req.create_session") {
		t.Errorf("metrics snapshot missing from stderr:\n%s", out)
	}
}

// cabledProc is one running cabled process for the kill/restart test.
type cabledProc struct {
	cmd  *exec.Cmd
	addr string
}

// startCabled launches the built binary with a snapshot dir and waits for
// its listen announcement.
func startCabled(t *testing.T, bin, snapDir string) *cabledProc {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-snapshot-dir", snapDir,
		"-shutdown-timeout", "5s", "-request-timeout", "1m")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := scanio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "listening on") {
			if i := strings.LastIndex(line, " "); i >= 0 {
				addr = line[i+1:]
			}
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		t.Fatalf("no listen address announced: %v", sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return &cabledProc{cmd: cmd, addr: addr}
}

func (p *cabledProc) post(t *testing.T, path string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post("http://"+p.addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func (p *cabledProc) get(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get("http://" + p.addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestSnapshotKillRestart is the crash-safety acceptance check at the
// process level: create and label sessions, SIGKILL the server (no
// drain, no cleanup), restart it on the same snapshot directory, and
// require every session back — same IDs, every label intact.
func TestSnapshotKillRestart(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL delivery is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "cabled")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	snapDir := t.TempDir()

	p1 := startCabled(t, bin, snapDir)
	defer p1.cmd.Process.Kill()

	var created apiv1.CreateSessionResponse
	if code := p1.post(t, "/v1/sessions", fixtureJSON(t, 6), &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	// Label everything good via the top concept, then flip class 0 bad —
	// two WAL-logged actions on top of the creation snapshot.
	body, _ := json.Marshal(apiv1.LabelRequest{Concept: &created.Top, Selector: &apiv1.Selector{Mode: "all"}, Label: "good"})
	if code := p1.post(t, "/v1/sessions/"+created.SessionID+"/label", body, nil); code != http.StatusOK {
		t.Fatalf("label: %d", code)
	}
	zero := 0
	body, _ = json.Marshal(apiv1.LabelRequest{Trace: &zero, Label: "bad"})
	if code := p1.post(t, "/v1/sessions/"+created.SessionID+"/label", body, nil); code != http.StatusOK {
		t.Fatalf("label: %d", code)
	}

	// SIGKILL: no shutdown handler runs, the WAL tail is whatever made it
	// to the filesystem — which is everything, since appends complete
	// before the response is written.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()

	p2 := startCabled(t, bin, snapDir)
	defer p2.cmd.Process.Kill()
	defer func() {
		p2.cmd.Process.Signal(syscall.SIGTERM)
		p2.cmd.Wait()
	}()

	var info apiv1.SessionInfo
	if code := p2.get(t, "/v1/sessions/"+created.SessionID, &info); code != http.StatusOK {
		t.Fatalf("restored session not found after SIGKILL restart: %d", code)
	}
	if info.NumTraces != created.NumTraces || info.NumConcepts != created.NumConcepts {
		t.Fatalf("restored shape %+v, want %d/%d", info, created.NumTraces, created.NumConcepts)
	}
	if !info.Done {
		t.Fatalf("restored session lost labels: %+v", info)
	}
	var traces apiv1.TraceList
	if code := p2.get(t, "/v1/sessions/"+created.SessionID+"/traces", &traces); code != http.StatusOK {
		t.Fatalf("traces: %d", code)
	}
	for i, tc := range traces.Traces {
		want := "good"
		if i == 0 {
			want = "bad"
		}
		if tc.Label != want {
			t.Errorf("class %d label %q after restart, want %q", i, tc.Label, want)
		}
	}
}

// fixtureJSON serializes the all-3-subsets-of-n trace set and a matching
// permissive FA as a create-session payload.
func fixtureJSON(t *testing.T, n int) []byte {
	t.Helper()
	var traces []trace.Trace
	id := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				traces = append(traces, trace.ParseEvents(fmt.Sprintf("t%d", id),
					fmt.Sprintf("e%d()", i), fmt.Sprintf("e%d()", j), fmt.Sprintf("e%d()", k)))
				id++
			}
		}
	}
	set := trace.NewSet(traces...)
	var tb, fb strings.Builder
	if err := trace.Write(&tb, set); err != nil {
		t.Fatal(err)
	}
	if err := fa.Write(&fb, fa.FromTraces(set.Alphabet())); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(apiv1.CreateSessionRequest{Traces: tb.String(), RefFA: fb.String()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}
