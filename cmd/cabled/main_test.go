package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/fa"
	"repro/internal/scanio"
	"repro/internal/server/apiv1"
	"repro/internal/trace"
)

// TestCabledSmoke builds the real binary, runs it, exercises the create →
// label → export path over TCP, then delivers SIGTERM while a large
// lattice build is in flight and requires a clean exit within the grace
// period. This is the deployment-shaped check the in-process httptest
// suite cannot provide.
func TestCabledSmoke(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM delivery is POSIX-only")
	}
	bin := filepath.Join(t.TempDir(), "cabled")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-metrics",
		"-shutdown-timeout", "5s", "-request-timeout", "1m")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stderr line announces the bound address.
	sc := scanio.NewScanner(stderr)
	var addr string
	if sc.Scan() {
		line := sc.Text()
		if i := strings.LastIndex(line, " "); i >= 0 {
			addr = line[i+1:]
		}
	}
	if addr == "" {
		t.Fatalf("no listen address announced: %v", sc.Err())
	}
	rest := &bytes.Buffer{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			fmt.Fprintln(rest, sc.Text())
		}
	}()
	base := "http://" + addr

	// Quick functional pass with a small session.
	small := fixtureJSON(t, 6)
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	var created apiv1.CreateSessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(apiv1.LabelRequest{Concept: &created.Top, Selector: &apiv1.Selector{Mode: "all"}, Label: "good"})
	resp, err = http.Post(base+"/v1/sessions/"+created.SessionID+"/label", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("label: status %d", resp.StatusCode)
	}

	// Fire a big build and SIGTERM mid-flight: the request context is
	// cancelled, and the process must drain within its grace period.
	big := fixtureJSON(t, 22) // C(22,3) = 1540 classes
	buildErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(big))
		if err == nil {
			resp.Body.Close()
		}
		buildErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the build start
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stderr to EOF before Wait: Wait closes the pipe and would
	// discard any buffered-but-unread shutdown output.
	exit := make(chan error, 1)
	go func() { <-done; exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("cabled exited uncleanly: %v\n%s", err, rest.String())
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("cabled did not shut down within the grace period")
	}
	<-buildErr
	out := rest.String()
	if !strings.Contains(out, "shutting down") || !strings.Contains(out, "cabled: stopped") {
		t.Errorf("shutdown banner missing from stderr:\n%s", out)
	}
	// -metrics dumps a snapshot on exit; the request counters must be in it.
	if !strings.Contains(out, "server.req.create_session") {
		t.Errorf("metrics snapshot missing from stderr:\n%s", out)
	}
}

// fixtureJSON serializes the all-3-subsets-of-n trace set and a matching
// permissive FA as a create-session payload.
func fixtureJSON(t *testing.T, n int) []byte {
	t.Helper()
	var traces []trace.Trace
	id := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				traces = append(traces, trace.ParseEvents(fmt.Sprintf("t%d", id),
					fmt.Sprintf("e%d()", i), fmt.Sprintf("e%d()", j), fmt.Sprintf("e%d()", k)))
				id++
			}
		}
	}
	set := trace.NewSet(traces...)
	var tb, fb strings.Builder
	if err := trace.Write(&tb, set); err != nil {
		t.Fatal(err)
	}
	if err := fa.Write(&fb, fa.FromTraces(set.Alphabet())); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(apiv1.CreateSessionRequest{Traces: tb.String(), RefFA: fb.String()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}
