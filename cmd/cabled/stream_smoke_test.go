package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/fa"
	"repro/internal/server/apiv1"
	"repro/internal/trace"
)

// stdioStreamSpec is the strict streaming protocol the smoke test checks:
// popen opens, fread/fwrite use, pclose closes, and fclose (present in
// the session alphabet) kills the frontier.
const stdioStreamSpec = "fa stdio\n" +
	"states 2\n" +
	"start 0\n" +
	"accept 0\n" +
	"edge 0 1 X = popen()\n" +
	"edge 1 1 fread(X)\n" +
	"edge 1 1 fwrite(X)\n" +
	"edge 1 0 pclose(X)\n" +
	"end\n"

// stdioFixtureJSON builds a create-session payload whose permissive
// reference FA covers the stdio alphabet, so stream violation windows
// are valid lattice objects.
func stdioFixtureJSON(t *testing.T) []byte {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fwrite(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = fopen()", "fread(X)", "fclose(X)"),
	)
	var tb, fb strings.Builder
	if err := trace.Write(&tb, set); err != nil {
		t.Fatal(err)
	}
	if err := fa.Write(&fb, fa.FromTraces(set.Alphabet())); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(apiv1.CreateSessionRequest{Traces: tb.String(), RefFA: fb.String()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postNDJSON sends a raw NDJSON batch to a stream's events endpoint.
func (p *cabledProc) postNDJSON(t *testing.T, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post("http://"+p.addr+path, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func (p *cabledProc) del(t *testing.T, path string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, "http://"+p.addr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestStreamSmoke is the deployment-shaped streaming check: the real
// cabled binary carries 100 open streams, every stream pumps NDJSON and
// violates once, SIGTERM lands mid-stream (all streams still open), the
// process must drain cleanly, and a restart on the same snapshot
// directory must bring back every stream frontier and every violation
// class.
func TestStreamSmoke(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM delivery is POSIX-only")
	}
	const nStreams = 100
	bin := filepath.Join(t.TempDir(), "cabled")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	snapDir := t.TempDir()

	p1 := startCabled(t, bin, snapDir)
	defer p1.cmd.Process.Kill()
	var created apiv1.CreateSessionResponse
	if code := p1.post(t, "/v1/sessions", stdioFixtureJSON(t), &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	sid := created.SessionID

	// Open the streams and pump each one: a violating batch (fclose on a
	// pipe), then a second batch that leaves the stream mid-protocol, so
	// SIGTERM genuinely lands mid-stream everywhere.
	open, _ := json.Marshal(apiv1.OpenStreamRequest{SessionID: sid, Spec: stdioStreamSpec, Window: 8})
	ids := make([]string, nStreams)
	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var opened apiv1.OpenStreamResponse
			if code := p1.post(t, "/v1/streams", open, &opened); code != http.StatusCreated {
				errs <- fmt.Errorf("stream %d: open: %d", i, code)
				return
			}
			ids[i] = opened.StreamID
			var ev apiv1.StreamEventsResponse
			batch := `{"event": "X = popen()"}` + "\n" + `{"event": "fread(X)"}` + "\n" + `{"event": "fclose(X)"}` + "\n"
			if code := p1.postNDJSON(t, "/v1/streams/"+opened.StreamID+"/events", batch, &ev); code != http.StatusOK {
				errs <- fmt.Errorf("stream %d: events: %d", i, code)
				return
			}
			if len(ev.Violations) != 1 {
				errs <- fmt.Errorf("stream %d: %d violations, want 1", i, len(ev.Violations))
				return
			}
			if code := p1.postNDJSON(t, "/v1/streams/"+opened.StreamID+"/events", `{"event": "X = popen()"}`+"\n", &ev); code != http.StatusOK {
				errs <- fmt.Errorf("stream %d: second batch: %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// SIGTERM with all 100 streams open: the drain must complete within
	// the grace period and flush stream state to the WAL.
	if err := p1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- p1.cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("cabled exited uncleanly: %v", err)
		}
	case <-time.After(10 * time.Second):
		p1.cmd.Process.Kill()
		t.Fatal("cabled did not drain within the grace period")
	}

	p2 := startCabled(t, bin, snapDir)
	defer p2.cmd.Process.Kill()
	defer func() {
		p2.cmd.Process.Signal(syscall.SIGTERM)
		p2.cmd.Wait()
	}()

	// Every stream is back with its full pre-SIGTERM state: four events,
	// one violation, frontier mid-protocol.
	var list apiv1.StreamList
	if code := p2.get(t, "/v1/streams?session="+sid, &list); code != http.StatusOK {
		t.Fatalf("list streams: %d", code)
	}
	if len(list.Streams) != nStreams {
		t.Fatalf("%d streams after restart, want %d", len(list.Streams), nStreams)
	}
	for _, si := range list.Streams {
		if si.Events != 4 || si.Violations != 1 || si.Accepting {
			t.Fatalf("stream %s restored as %+v, want 4 events, 1 violation, mid-protocol", si.StreamID, si)
		}
	}

	// The violation class survived into the session's lattice.
	var traces apiv1.TraceList
	if code := p2.get(t, "/v1/sessions/"+sid+"/traces", &traces); code != http.StatusOK {
		t.Fatalf("traces: %d", code)
	}
	found := false
	for _, tc := range traces.Traces {
		if tc.Key == "X = popen(); fread(X); fclose(X)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation class missing after restart; classes: %+v", traces.Traces)
	}

	// Restored streams are live checkers, not exhibits: one finishes its
	// protocol instance and closes clean, one closes mid-protocol and
	// yields the incomplete-instance violation.
	var ev apiv1.StreamEventsResponse
	if code := p2.postNDJSON(t, "/v1/streams/"+ids[0]+"/events", `{"event": "pclose(X)"}`+"\n", &ev); code != http.StatusOK {
		t.Fatalf("post-restart events: %d", code)
	}
	if len(ev.Violations) != 0 {
		t.Fatalf("pclose on a restored mid-protocol stream violated: %+v", ev.Violations)
	}
	var closed apiv1.CloseStreamResponse
	if code := p2.del(t, "/v1/streams/"+ids[0], &closed); code != http.StatusOK || closed.Violation != nil {
		t.Fatalf("clean close: code %d, violation %+v", code, closed.Violation)
	}
	if code := p2.del(t, "/v1/streams/"+ids[1], &closed); code != http.StatusOK {
		t.Fatalf("mid-protocol close: %d", code)
	}
	if closed.Violation == nil || !closed.Violation.Incomplete {
		t.Fatalf("mid-protocol close yielded %+v, want an incomplete violation", closed.Violation)
	}
}
