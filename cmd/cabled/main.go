// Command cabled serves Cable debugging sessions over HTTP/JSON, so many
// users (or scripted pipelines) can label trace sets concurrently against
// one process that amortizes lattice construction through its cache.
//
// Usage:
//
//	cabled [-addr :8372] [-request-timeout 30s] [-idle-timeout 30m]
//	       [-cache-size 64] [-workers 0] [-snapshot-dir DIR] [-metrics]
//
// The API is versioned under /v1; see API.md at the repository root for
// the endpoint reference and a curl walkthrough. On SIGINT/SIGTERM the
// server stops accepting connections, cancels in-flight lattice builds,
// and exits once drained (or after -shutdown-timeout).
//
// With -snapshot-dir, sessions are persisted across restarts — and
// crashes: every session writes a snapshot at creation, labeling actions
// append to a per-session write-ahead log, and a graceful drain rewrites
// all snapshots. On boot the directory is replayed, so clients resume
// with the session IDs they already hold. See FORMATS.md for the file
// layouts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8372", "listen address")
		requestTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables); also bounds lattice builds")
		idleTimeout     = flag.Duration("idle-timeout", 30*time.Minute, "evict sessions untouched for this long (0 disables)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for draining on SIGTERM")
		cacheSize       = flag.Int("cache-size", 64, "lattice LRU capacity (0 disables the cache)")
		workers         = flag.Int("workers", 0, "default lattice-build parallelism (0 = GOMAXPROCS)")
		snapshotDir     = flag.String("snapshot-dir", "", "persist sessions here and restore them on boot (empty disables)")
		metrics         = flag.Bool("metrics", false, "collect metrics; snapshot on exit and live at /v1/metrics")
		cpuprofile      = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile      = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := obs.SetupCLI(obs.CLIConfig{Metrics: *metrics, CPUProfile: *cpuprofile, MemProfile: *memprofile})
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	if err := run(*addr, server.Config{
		RequestTimeout: *requestTimeout,
		IdleTimeout:    *idleTimeout,
		CacheSize:      *cacheSize,
		Workers:        *workers,
		SnapshotDir:    *snapshotDir,
	}, *shutdownTimeout); err != nil {
		stop()
		log.Fatal(err)
	}
}

func run(addr string, cfg server.Config, shutdownTimeout time.Duration) error {
	// Root context: cancelled on the first SIGINT/SIGTERM. Every request
	// context descends from it via BaseContext, so cancelling it aborts
	// in-flight lattice builds before Shutdown starts draining.
	rootCtx, cancelRoot := context.WithCancel(context.Background())
	defer cancelRoot()

	svc := server.New(cfg)
	if cfg.SnapshotDir != "" {
		n, err := svc.LoadSnapshots(rootCtx)
		if err != nil {
			return fmt.Errorf("restoring sessions: %w", err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "cabled: restored %d session(s) from %s\n", n, cfg.SnapshotDir)
		}
	}
	go svc.Janitor(rootCtx, 0)

	httpSrv := &http.Server{
		Addr:        addr,
		Handler:     svc.Handler(),
		BaseContext: func(net.Listener) context.Context { return rootCtx },
		ReadTimeout: 2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cabled: listening on %s\n", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "cabled: %v, shutting down\n", sig)
	}
	// Cancel builds first so drained handlers return quickly, then drain.
	cancelRoot()
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Handlers have drained; snapshot every live session so the next boot
	// restores them without replaying the WALs.
	if cfg.SnapshotDir != "" {
		n, err := svc.SaveSnapshots()
		if err != nil {
			return fmt.Errorf("saving sessions: %w", err)
		}
		fmt.Fprintf(os.Stderr, "cabled: saved %d session(s) to %s\n", n, cfg.SnapshotDir)
	}
	fmt.Fprintln(os.Stderr, "cabled: stopped")
	return nil
}
