// Command fca is a standalone formal-concept-analysis tool: it builds the
// concept lattice of a context and prints it as text or DOT. Contexts come
// from a Burmeister .cxt file (the interchange format of FCA tools) or
// from a trace file plus a reference FA (the paper's traces × executed-
// transitions context of Section 3.2).
//
// Usage:
//
//	fca -cxt animals.cxt [-dot]
//	fca -traces scenarios.txt -fa spec.fa [-dot]
//	fca -traces scenarios.txt -pattern "(a()|b())*" [-dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/trace"
)

func main() {
	var (
		cxtPath    = flag.String("cxt", "", "Burmeister context file")
		tracesPath = flag.String("traces", "", "trace file (with -fa or -pattern)")
		faPath     = flag.String("fa", "", "reference FA file")
		pattern    = flag.String("pattern", "", "reference FA as a regular expression over events")
		dot        = flag.Bool("dot", false, "emit the lattice in DOT format")
		emitCxt    = flag.String("emitcxt", "", "also write the context in Burmeister format here")
	)
	flag.Parse()

	var (
		ctx  *concept.Context
		name string
		err  error
	)
	switch {
	case *cxtPath != "":
		f, ferr := os.Open(*cxtPath)
		die(ferr)
		ctx, name, err = concept.ReadContext(f)
		die(f.Close())
		die(err)
		if name == "" {
			name = *cxtPath
		}
	case *tracesPath != "":
		tf, ferr := os.Open(*tracesPath)
		die(ferr)
		set, terr := trace.Read(tf)
		die(tf.Close())
		die(terr)
		var ref *fa.FA
		switch {
		case *pattern != "":
			ref, err = fa.Compile("pattern", *pattern)
			die(err)
		case *faPath != "":
			ff, ferr := os.Open(*faPath)
			die(ferr)
			ref, err = fa.Read(ff)
			die(ff.Close())
			die(err)
		default:
			ref = fa.FromTraces(set.Alphabet())
		}
		ctx, err = concept.TraceContext(set.Representatives(), ref)
		die(err)
		name = *tracesPath
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *emitCxt != "" {
		out, ferr := os.Create(*emitCxt)
		die(ferr)
		err = concept.WriteContext(out, ctx, name)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		die(err)
	}

	lattice := concept.Build(ctx)
	if *dot {
		die(lattice.WriteDot(os.Stdout, name))
		return
	}
	fmt.Printf("context %q: %d objects x %d attributes\n", name, ctx.NumObjects(), ctx.NumAttributes())
	fmt.Print(lattice)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fca:", err)
		os.Exit(1)
	}
}
