package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fa"
	"repro/internal/stream"
)

// runStream implements the "cable stream" subcommand: offline replay of
// NDJSON event streams through the online checker (internal/stream),
// the command-line counterpart of cabled's /v1/streams endpoints. Each
// file is one stream, checked independently against the specification
// with bounded memory; violations print with their windowed
// counterexample, and the command exits 1 when any stream violates —
// including streams that end mid-protocol — so it slots into CI.
//
//	cable stream -fa spec.fa [-window N] events.ndjson...
//
// With no files, events are read from standard input.
func runStream(args []string) {
	fs := flag.NewFlagSet("cable stream", flag.ExitOnError)
	var (
		faPath = fs.String("fa", "", "specification FA file to check against")
		window = fs.Int("window", 0, fmt.Sprintf("violation window size (default %d, max %d)", stream.DefaultWindow, stream.MaxWindow))
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: cable stream -fa spec.fa [-window N] events.ndjson...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *faPath == "" {
		fs.Usage()
		stop()
		os.Exit(2)
	}
	ff, err := os.Open(*faPath)
	die(err)
	spec, err := fa.Read(ff)
	die(ff.Close())
	die(err)
	sim := spec.Sim()

	files := fs.Args()
	stdin := false
	if len(files) == 0 {
		files = []string{"-"}
		stdin = true
	}
	totalEvents, totalViolations, totalIssues := uint64(0), 0, 0
	for _, path := range files {
		name := path
		var src *os.File
		if stdin {
			name, src = "<stdin>", os.Stdin
		} else {
			src, err = os.Open(path)
			die(err)
		}
		c := stream.New(sim, stream.Config{Window: *window})
		_, issues, err := stream.Ingest(c, src, func(v stream.Violation) {
			fmt.Printf("%s: %s\n", name, v)
		})
		if !stdin {
			die(src.Close())
		}
		die(err)
		for _, iss := range issues {
			fmt.Fprintf(os.Stderr, "cable stream: %s: %v\n", name, iss.Err)
		}
		totalIssues += len(issues)
		if v, fired := c.Finalize(); fired {
			fmt.Printf("%s: %s\n", name, v)
		}
		totalEvents += c.Events()
		totalViolations += c.Violations()
	}
	fmt.Printf("cable stream: %d event(s), %d violation(s) against %s\n", totalEvents, totalViolations, spec.Name())
	if totalViolations > 0 || totalIssues > 0 {
		stop()
		os.Exit(1)
	}
}
