package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fa"
	"repro/internal/speclint"
	"repro/internal/specs"
	"repro/internal/trace"
)

// runLint implements the "cable lint" subcommand: the structural and
// semantic checks of specification automata (internal/speclint) run
// before any lattice is built. With -ref it also diffs the spec against
// a reference automaton by language; -witness prints the concrete
// counterexample trace under each finding that has one. It exits 1 when
// any finding is reported, so it slots into CI.
//
//	cable lint -fa spec.fa [-traces scenarios.txt] [-ref correct.fa] [-witness]
//	cable lint -corpus [-witness]
func runLint(args []string) {
	fs := flag.NewFlagSet("cable lint", flag.ExitOnError)
	var (
		faPath     = fs.String("fa", "", "specification FA file to lint")
		tracesPath = fs.String("traces", "", "optional trace file; enables alphabet checking")
		refPath    = fs.String("ref", "", "optional reference FA; enables the language diff")
		witness    = fs.Bool("witness", false, "print the witness trace under each finding that carries one")
		corpus     = fs.Bool("corpus", false, "lint every shipped paper specification instead of one file")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: cable lint -fa spec.fa [-traces scenarios.txt] [-ref correct.fa] [-witness]")
		fmt.Fprintln(fs.Output(), "       cable lint -corpus [-witness]")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	var findings []speclint.Finding
	specCount := 0
	switch {
	case *corpus:
		// Corpus mode runs every automaton-only rule per spec, then the
		// cross-spec duplicate/subsumption pass over the whole set.
		var fas []*fa.FA
		for _, sp := range append(specs.All(), specs.Stdio()) {
			specCount++
			findings = append(findings, speclint.LintAll(sp.FA)...)
			fas = append(fas, sp.FA)
		}
		cross, err := speclint.Corpus(fas)
		die(err)
		findings = append(findings, cross...)
	case *faPath != "":
		spec := readFAFile(*faPath)
		specCount++
		findings = speclint.LintAll(spec)
		if *tracesPath != "" {
			tf, err := os.Open(*tracesPath)
			die(err)
			set, err := trace.Read(tf)
			die(tf.Close())
			die(err)
			findings = append(findings, speclint.AlphabetFindings(spec, set.Representatives())...)
		}
		if *refPath != "" {
			diff, err := speclint.Diff(spec, readFAFile(*refPath))
			die(err)
			findings = append(findings, diff...)
		}
	default:
		fs.Usage()
		stop()
		os.Exit(2)
	}

	for _, f := range findings {
		fmt.Println(f)
		if *witness && f.Witness != "" {
			fmt.Printf("  witness: %s\n", f.Witness)
		}
	}
	if len(findings) > 0 {
		fmt.Printf("cable lint: %d finding(s) in %d spec(s)\n", len(findings), specCount)
		stop()
		os.Exit(1)
	}
	fmt.Printf("cable lint: %d spec(s) clean\n", specCount)
}

// readFAFile loads one automaton from the fa text format, dying on any
// failure.
func readFAFile(path string) *fa.FA {
	f, err := os.Open(path)
	die(err)
	m, err := fa.Read(f)
	die(f.Close())
	die(err)
	return m
}
