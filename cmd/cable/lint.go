package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fa"
	"repro/internal/speclint"
	"repro/internal/specs"
	"repro/internal/trace"
)

// runLint implements the "cable lint" subcommand: a structural check of
// specification automata (internal/speclint) run before any lattice is
// built. It exits 1 when any finding is reported, so it slots into CI.
//
//	cable lint -fa spec.fa [-traces scenarios.txt]
//	cable lint -corpus
func runLint(args []string) {
	fs := flag.NewFlagSet("cable lint", flag.ExitOnError)
	var (
		faPath     = fs.String("fa", "", "specification FA file to lint")
		tracesPath = fs.String("traces", "", "optional trace file; enables alphabet checking")
		corpus     = fs.Bool("corpus", false, "lint every shipped paper specification instead of one file")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: cable lint -fa spec.fa [-traces scenarios.txt]")
		fmt.Fprintln(fs.Output(), "       cable lint -corpus")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	var findings []speclint.Finding
	specCount := 0
	switch {
	case *corpus:
		for _, sp := range append(specs.All(), specs.Stdio()) {
			specCount++
			findings = append(findings, speclint.Lint(sp.FA)...)
		}
	case *faPath != "":
		f, err := os.Open(*faPath)
		die(err)
		spec, err := fa.Read(f)
		die(f.Close())
		die(err)
		specCount++
		if *tracesPath != "" {
			tf, err := os.Open(*tracesPath)
			die(err)
			set, err := trace.Read(tf)
			die(tf.Close())
			die(err)
			findings = speclint.LintWithTraces(spec, set.Representatives())
		} else {
			findings = speclint.Lint(spec)
		}
	default:
		fs.Usage()
		stop()
		os.Exit(2)
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Printf("cable lint: %d finding(s) in %d spec(s)\n", len(findings), specCount)
		stop()
		os.Exit(1)
	}
	fmt.Printf("cable lint: %d spec(s) clean\n", specCount)
}
