// Command cable is the interactive specification-debugging tool: a
// terminal rendition of the paper's Dotty-based Cable. It loads a set of
// traces (and optionally a reference FA), builds the concept lattice, and
// lets the user explore concepts, view summaries, label traces en masse,
// start Focus sub-sessions, and save/restore labelings.
//
// Usage:
//
//	cable -traces scenarios.txt [-fa spec.fa]
//	cable -workspace session.cws
//	cable lint -fa spec.fa [-traces scenarios.txt]
//	cable lint -corpus
//	cable stream -fa spec.fa [-window N] events.ndjson...
//
// A workspace file (written by the "workspace" command) bundles traces,
// reference FA, and labels, so a labeling session can be resumed. Type
// "help" at the prompt for the command list; see internal/repl for the
// full interface.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cable"
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/trace"
	"repro/internal/workspace"
)

func main() {
	// Subcommands dispatch before flag parsing; everything else is the
	// classic flags-only interactive entry point.
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		runLint(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "stream" {
		runStream(os.Args[2:])
		return
	}
	var (
		tracesPath = flag.String("traces", "", "trace file")
		faPath     = flag.String("fa", "", "reference FA file (default: learn one)")
		wsPath     = flag.String("workspace", "", "resume from a workspace file")
		metrics    = flag.Bool("metrics", false, "collect metrics and dump a snapshot to stderr on exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	var err error
	stop, err = obs.SetupCLI(obs.CLIConfig{Metrics: *metrics, CPUProfile: *cpuprofile, MemProfile: *memprofile})
	die(err)
	defer stop()
	if *wsPath != "" {
		wf, err := os.Open(*wsPath)
		die(err)
		session, err := workspace.Load(wf)
		die(wf.Close())
		die(err)
		fmt.Printf("resumed workspace %s\n", *wsPath)
		repl.New(session, os.Stdout).Run(os.Stdin)
		return
	}
	if *tracesPath == "" {
		flag.Usage()
		stop()
		os.Exit(2)
	}
	f, err := os.Open(*tracesPath)
	die(err)
	set, err := trace.Read(f)
	die(f.Close())
	die(err)
	if set.Total() == 0 {
		die(fmt.Errorf("no traces in %s", *tracesPath))
	}
	var ref *fa.FA
	if *faPath != "" {
		ff, err := os.Open(*faPath)
		die(err)
		ref, err = fa.Read(ff)
		die(ff.Close())
		die(err)
	} else {
		ref = core.ReferenceFA(set)
		fmt.Printf("learned reference FA: %d states, %d transitions\n", ref.NumStates(), ref.NumTransitions())
	}
	session, err := cable.NewSession(set, ref)
	die(err)
	repl.New(session, os.Stdout).Run(os.Stdin)
}

// stop flushes profiles and the metrics snapshot; die must run it before
// os.Exit, which skips deferred calls.
var stop = func() {}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cable:", err)
		stop()
		os.Exit(1)
	}
}
