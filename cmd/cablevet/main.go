// Command cablevet runs the repository's invariant suite (obsspan,
// poolescape, ctxpropagate, errwrapline, lockheld) over Go packages.
//
// Two modes share one binary:
//
//	cablevet [-run name[,name]] [-list] [packages...]
//	    Standalone: load packages (default ./...) via the go tool's
//	    export data and print diagnostics. Exit 1 when any are found.
//
//	go vet -vettool=$(pwd)/bin/cablevet ./...
//	    Vet tool: the go command invokes cablevet once per package with
//	    a vet.cfg, caching results across builds. This is the CI lane.
//
// Findings are suppressed per line with
//
//	//cablevet:ignore <analyzer|all> [reason]
//
// placed on the flagged line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzers"
)

func main() {
	// The go vet handshake (-V=full, -flags) and vet.cfg invocation
	// bypass normal flag parsing: the go command controls that call
	// shape, not the user.
	if analysis.HandleVetFlags(os.Args[1:]) {
		return
	}
	if len(os.Args) == 2 && analysis.IsVetConfig(os.Args[1]) {
		os.Exit(runVetTool(os.Args[1]))
	}
	os.Exit(runStandalone(os.Args[1:]))
}

func runVetTool(cfg string) int {
	diags, fset, err := analysis.RunUnitchecker(cfg, analyzers.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cablevet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		p := d.Position(fset)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", p.Filename, p.Line, p.Column, d.Message)
	}
	return 1
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("cablevet", flag.ExitOnError)
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cablevet [-run name[,name]] [-list] [packages...]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := analyzers.All()
	if *runNames != "" {
		suite = suite[:0:0]
		for _, name := range strings.Split(*runNames, ",") {
			a, ok := analyzers.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "cablevet: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cablevet: %v\n", err)
		return 1
	}
	pkgs, err := analysis.LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cablevet: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cablevet: %s: %v\n", pkg.ImportPath, err)
			exit = 1
			continue
		}
		sort.Slice(diags, func(i, j int) bool {
			pi, pj := diags[i].Position(pkg.Fset), diags[j].Position(pkg.Fset)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			return pi.Line < pj.Line
		})
		for _, d := range diags {
			p := d.Position(pkg.Fset)
			fmt.Printf("%s:%d:%d: %s (%s)\n", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
			exit = 1
		}
	}
	return exit
}
