// Command paper regenerates the tables and figures of the evaluation
// (Section 5) from the synthetic workloads.
//
// Usage:
//
//	paper -all                 # every table and figure
//	paper -table 3             # one table (1, 2, or 3)
//	paper -figure 5            # one figure (1..10 or wf)
//	paper -seed 7 -trials 256  # workload seed and Random-strategy trials
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/textplot"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate one table (1, 2, or 3)")
		figure     = flag.String("figure", "", "regenerate one figure (1..10 or wf)")
		all        = flag.Bool("all", false, "regenerate everything")
		growth     = flag.Bool("growth", false, "lattice-size-vs-transitions analysis (Section 5.2)")
		bugs       = flag.Bool("bugs", false, "bug census by kind (the paper's 199-bugs claim)")
		e2e        = flag.Bool("e2e", false, "mine->debug->relearn round trip vs the correct specs")
		sweep      = flag.String("sweep", "", "Cable-advantage scaling sweep for the named spec (Section 5.3)")
		refabl     = flag.String("refablation", "", "reference-FA ablation for the named spec (Section 2.1)")
		seed       = flag.Int64("seed", exp.DefaultConfig().Seed, "workload generation seed")
		trials     = flag.Int("trials", 1024, "Random-strategy trials to average")
		budget     = flag.Int("optbudget", 0, "Optimal-strategy state budget (0 = default)")
		metrics    = flag.Bool("metrics", false, "collect metrics and dump a snapshot to stderr on exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	var err error
	stop, err = obs.SetupCLI(obs.CLIConfig{Metrics: *metrics, CPUProfile: *cpuprofile, MemProfile: *memprofile})
	die(err)
	defer stop()
	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.RandomTrials = *trials
	cfg.OptimalBudget = *budget

	if !*all && *table == 0 && *figure == "" && !*growth && *sweep == "" && !*bugs && !*e2e && *refabl == "" {
		flag.Usage()
		stop()
		os.Exit(2)
	}
	if *all || *growth {
		pts, err := exp.LatticeGrowth(cfg)
		die(err)
		fmt.Println(exp.FormatGrowth(pts))
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, float64(p.Attrs))
			ys = append(ys, float64(p.Concepts))
		}
		fmt.Println(textplot.Plot(56, 12, textplot.Series{Name: "concepts vs transitions", X: xs, Y: ys}))
	}
	if *all || *bugs {
		rows, err := exp.BugCensus(cfg)
		die(err)
		fmt.Println(exp.FormatBugs(rows))
	}
	if *all || *e2e {
		rows, err := exp.EndToEndAll(cfg)
		die(err)
		fmt.Println(exp.FormatE2E(rows))
	}
	if *sweep != "" {
		pts, err := exp.AdvantageSweep(*sweep, cfg, []int{50, 100, 200, 400, 800, 1600})
		die(err)
		fmt.Println(exp.FormatSweep(*sweep, pts))
		var xs, expert, baseline []float64
		for _, p := range pts {
			xs = append(xs, float64(p.Unique))
			expert = append(expert, float64(p.Expert))
			baseline = append(baseline, float64(p.Baseline))
		}
		fmt.Println(textplot.Plot(56, 12,
			textplot.Series{Name: "baseline", X: xs, Y: baseline},
			textplot.Series{Name: "expert", X: xs, Y: expert}))
	}
	if *refabl != "" {
		rows, err := exp.ReferenceAblation(*refabl, cfg)
		die(err)
		fmt.Println(exp.FormatRefAblation(*refabl, rows))
	}
	if *all || *table == 1 {
		fmt.Println(exp.FormatTable1(exp.Table1()))
	}
	if *all || *table == 2 {
		rows, err := exp.Table2(cfg)
		die(err)
		fmt.Println(exp.FormatTable2(rows))
	}
	if *all || *table == 3 {
		rows, err := exp.Table3(cfg)
		die(err)
		fmt.Println(exp.FormatTable3(rows))
		fmt.Println(exp.FormatHeadline(exp.ComputeHeadline(rows), len(rows)))
	}
	if *all || *figure != "" {
		figs, err := exp.Figures(cfg)
		die(err)
		if *all {
			for _, key := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "wf"} {
				fmt.Println(figs[key])
			}
		} else if f, ok := figs[*figure]; ok {
			fmt.Println(f)
		} else {
			fmt.Fprintf(os.Stderr, "paper: unknown figure %q (1..10 or wf)\n", *figure)
			stop()
			os.Exit(2)
		}
	}
}

// stop flushes profiles and the metrics snapshot; die must run it before
// os.Exit, which skips deferred calls.
var stop = func() {}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		stop()
		os.Exit(1)
	}
}
