// Command strauss is the specification miner (Figure 7): it extracts
// per-object scenario traces from whole-program execution traces and learns
// a specification FA from them with the sk-strings method.
//
// Usage:
//
//	strauss -runs runs.txt -seeds fopen,popen [-core 3] [-scenarios out.txt] [-o spec.fa]
//	strauss -relearn good.txt [-o spec.fa]
//
// Run files hold one trace record per program run (see internal/trace's
// format) with concrete object identities written as plain names: the
// front end treats every distinct argument name within a run as a distinct
// object.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/learn"
	"repro/internal/mine"
	"repro/internal/trace"
)

func main() {
	var (
		runsPath  = flag.String("runs", "", "whole-program trace file")
		seeds     = flag.String("seeds", "", "comma-separated seed operations (default: every defining operation)")
		coreAt    = flag.Int("core", 0, "coring threshold (0 = off)")
		scenarios = flag.String("scenarios", "", "also write extracted scenario traces here")
		relearn   = flag.String("relearn", "", "skip the front end: learn from this scenario-trace file")
		output    = flag.String("o", "", "write the specification FA here (default stdout)")
		k         = flag.Int("k", learn.DefaultLearner.K, "sk-strings k")
		s         = flag.Float64("s", learn.DefaultLearner.S, "sk-strings probability mass")
	)
	flag.Parse()

	backend := mine.BackEnd{
		Learner:       learn.Learner{K: *k, S: *s, Agreement: learn.And},
		CoreThreshold: *coreAt,
	}

	var (
		set *trace.Set
		err error
	)
	switch {
	case *relearn != "":
		set, err = readTraces(*relearn)
		die(err)
	case *runsPath != "":
		runSet, err := readTraces(*runsPath)
		die(err)
		runs := toRuns(runSet)
		fe := mine.FrontEnd{Seeds: splitSeeds(*seeds, runs), FollowDerived: true}
		set = fe.ExtractAll(runs)
		fmt.Fprintf(os.Stderr, "strauss: extracted %d scenario traces (%d unique)\n", set.Total(), set.NumClasses())
		if *scenarios != "" {
			die(writeTraces(*scenarios, set))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	spec, err := backend.Infer("mined", set)
	die(err)
	fmt.Fprintf(os.Stderr, "strauss: learned FA with %d states, %d transitions\n", spec.NumStates(), spec.NumTransitions())
	if *output == "" {
		die(fa.Write(os.Stdout, spec))
		return
	}
	out, err := os.Create(*output)
	die(err)
	err = fa.Write(out, spec)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	die(err)
}

// toRuns converts symbolic run records into concrete runs: each distinct
// name within a record becomes an object identity.
func toRuns(set *trace.Set) []mine.Run {
	var runs []mine.Run
	next := event.ObjID(1)
	for i, c := range set.Classes() {
		for j := 0; j < c.Count; j++ {
			id := c.IDs[j]
			if id == "" {
				id = fmt.Sprintf("run%d", i)
			}
			objs := map[string]event.ObjID{}
			alloc := func(name string) event.ObjID {
				if name == "" {
					return 0
				}
				if o, ok := objs[name]; ok {
					return o
				}
				objs[name] = next
				next++
				return objs[name]
			}
			var events []event.Concrete
			for _, e := range c.Rep.Events {
				ce := event.Concrete{Op: e.Op, Def: alloc(e.Def)}
				for _, u := range e.Uses {
					ce.Uses = append(ce.Uses, alloc(u))
				}
				events = append(events, ce)
			}
			runs = append(runs, mine.Run{ID: id, Events: events})
		}
	}
	return runs
}

// splitSeeds parses -seeds, defaulting to every operation that defines an
// object anywhere in the input.
func splitSeeds(arg string, runs []mine.Run) []string {
	if arg != "" {
		return strings.Split(arg, ",")
	}
	seen := map[string]bool{}
	var out []string
	for _, r := range runs {
		for _, e := range r.Events {
			if e.Def != 0 && !seen[e.Op] {
				seen[e.Op] = true
				out = append(out, e.Op)
			}
		}
	}
	return out
}

func readTraces(path string) (*trace.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func writeTraces(path string, set *trace.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = trace.Write(f, set)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "strauss:", err)
		os.Exit(1)
	}
}
