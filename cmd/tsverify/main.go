// Command tsverify checks program behaviour against a temporal
// specification and reports the violation traces — the verification-tool
// role of Section 2.1. It has a dynamic mode (check recorded scenario
// traces) and a static mode (check a program-model FA exhaustively via the
// product construction). Violations can be ranked by statistical surprise
// and written to a trace file for debugging with cmd/cable.
//
// Usage:
//
//	tsverify -fa spec.fa -traces scenarios.txt [-rank] [-violations out.txt]
//	tsverify -pattern "X = fopen() fclose(X)" -traces scenarios.txt
//	tsverify -fa spec.fa -program model.fa [-maxlen 10] [-limit 100]
//	tsverify -fa spec.fa -progsrc program.prog
//	tsverify -fa spec.fa -lint [-traces scenarios.txt] [-ref correct.fa]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/rank"
	"repro/internal/speclint"
	"repro/internal/trace"
	"repro/internal/verify"
)

func main() {
	var (
		faPath     = flag.String("fa", "", "specification FA file (required unless -pattern)")
		pattern    = flag.String("pattern", "", "specification as a regular expression over events")
		tracesPath = flag.String("traces", "", "scenario trace file (dynamic checking)")
		progPath   = flag.String("program", "", "program-model FA file (static checking)")
		progSrc    = flag.String("progsrc", "", "program source file (compiled and checked statically)")
		maxLen     = flag.Int("maxlen", 10, "static checking: maximum violation length")
		limit      = flag.Int("limit", 100, "static checking: maximum violations reported")
		outPath    = flag.String("violations", "", "write violating traces here")
		ranked     = flag.Bool("rank", false, "rank violation classes most-suspicious first (statistical surprise)")
		explain    = flag.Bool("explain", false, "diagnose each violation: offending event and the events the spec expected")
		lint       = flag.Bool("lint", false, "lint the specification and exit (no verification)")
		refPath    = flag.String("ref", "", "lint mode: diff the spec against this reference FA by language")
		quiet      = flag.Bool("q", false, "print only the summary line")
		metrics    = flag.Bool("metrics", false, "collect metrics and dump a snapshot to stderr on exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	if (*faPath == "" && *pattern == "") || (!*lint && *tracesPath == "" && *progPath == "" && *progSrc == "") {
		flag.Usage()
		os.Exit(2)
	}
	var spec *fa.FA
	var err error
	stop, err = obs.SetupCLI(obs.CLIConfig{Metrics: *metrics, CPUProfile: *cpuprofile, MemProfile: *memprofile})
	die(err)
	defer stop()
	if *pattern != "" {
		spec, err = fa.Compile("pattern", *pattern)
		die(err)
	} else {
		spec, err = readFA(*faPath)
		die(err)
	}
	if *lint {
		runLint(spec, *tracesPath, *refPath)
		return
	}

	var (
		set        *trace.Set
		vset       *trace.Set
		violations []verify.Violation
		checked    int
	)
	switch {
	case *progSrc != "":
		src, err := os.ReadFile(*progSrc)
		die(err)
		parsed, err := prog.Parse(string(src))
		die(err)
		// Specifications are per-object: check each variable's projected
		// protocol separately and pool the violations.
		vset = &trace.Set{}
		for _, v := range parsed.Vars() {
			program, err := parsed.Project(v).Compile()
			die(err)
			vs, raw, err := verify.StaticSet(program, spec, *maxLen, *limit)
			die(err)
			vset.AddAll(vs)
			violations = append(violations, raw...)
		}
		set = vset
		checked = vset.Total()
	case *progPath != "":
		program, err := readFA(*progPath)
		die(err)
		vset, violations, err = verify.StaticSet(program, spec, *maxLen, *limit)
		die(err)
		set = vset
		checked = vset.Total()
	default:
		tf, err := os.Open(*tracesPath)
		die(err)
		set, err = trace.Read(tf)
		die(tf.Close())
		die(err)
		vset, violations = verify.CheckSet(spec, set)
		checked = set.Total()
	}
	static := *progPath != "" || *progSrc != ""

	switch {
	case *quiet:
	case *ranked:
		ranker, err := rank.New(set)
		die(err)
		for i, rep := range ranker.Rank(violations) {
			surprise := "∞"
			if !math.IsInf(rep.Surprise, 1) {
				surprise = fmt.Sprintf("%.2f", rep.Surprise)
			}
			fmt.Printf("#%d [x%d, surprise %s bits/event] %s\n", i+1, rep.Count, surprise, rep.Trace.Key())
		}
	default:
		for _, v := range violations {
			fmt.Printf("violation [%s]: %s\n", v.Trace.ID, v)
			if *explain {
				if exp, ok := verify.Explain(spec, v.Trace); ok {
					fmt.Printf("  -> %s\n", exp)
				}
			}
		}
	}
	if static {
		fmt.Printf("tsverify: %d static violation(s) of %q up to length %d (%d unique)\n",
			vset.Total(), spec.Name(), *maxLen, vset.NumClasses())
	} else {
		fmt.Printf("tsverify: %d of %d traces violate %q (%d unique violations)\n",
			vset.Total(), checked, spec.Name(), vset.NumClasses())
	}
	if *outPath != "" {
		out, err := os.Create(*outPath)
		die(err)
		err = trace.Write(out, vset)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		die(err)
	}
	if vset.Total() > 0 {
		stop()
		os.Exit(1)
	}
}

// runLint checks the specification itself (internal/speclint) instead of
// checking traces against it: a spec that never flags anything, or whose
// alphabet has drifted from the traces, makes every verification result
// vacuously misleading. With a reference FA the spec is also diffed by
// language, and each disagreement prints its concrete witness trace.
// Exits 1 on findings so CI can gate on it.
func runLint(spec *fa.FA, tracesPath, refPath string) {
	findings := speclint.LintAll(spec)
	if tracesPath != "" {
		tf, err := os.Open(tracesPath)
		die(err)
		set, err := trace.Read(tf)
		die(tf.Close())
		die(err)
		findings = append(findings, speclint.AlphabetFindings(spec, set.Representatives())...)
	}
	if refPath != "" {
		ref, err := readFA(refPath)
		die(err)
		diff, err := speclint.Diff(spec, ref)
		die(err)
		findings = append(findings, diff...)
	}
	for _, f := range findings {
		fmt.Println(f)
		if f.Witness != "" {
			fmt.Printf("  witness: %s\n", f.Witness)
		}
	}
	if len(findings) > 0 {
		fmt.Printf("tsverify: %d lint finding(s) in %q\n", len(findings), spec.Name())
		stop()
		os.Exit(1)
	}
	fmt.Printf("tsverify: spec %q lints clean\n", spec.Name())
}

func readFA(path string) (*fa.FA, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fa.Read(f)
}

// stop flushes profiles and the metrics snapshot; die must run it before
// os.Exit, which skips deferred calls.
var stop = func() {}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsverify:", err)
		stop()
		os.Exit(1)
	}
}
