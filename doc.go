// Package repro reproduces "Debugging temporal specifications with concept
// analysis" (Ammons, Bodík, Larus, Mandelin; PLDI 2003) as a Go library.
//
// The public surface lives in internal/core (the two debugging workflows),
// internal/cable (labeling sessions), internal/concept (formal concept
// analysis), internal/fa (event automata), internal/learn (the sk-strings
// learner), internal/mine (the Strauss miner), internal/verify (the trace
// checker), internal/strategy and internal/wellformed (the Section 4
// analyses), internal/specs and internal/xtrace (the evaluation corpus and
// workloads), and internal/exp (the table/figure harness driven by
// cmd/paper).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate the measurements behind every table and figure.
package repro
