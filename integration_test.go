package repro

// End-to-end tests that build the command binaries and drive them the way
// a user would: mine a specification from generated runs, verify traces
// against it, debug with the Cable REPL over a pipe, and round-trip FCA
// contexts. These tests complement the package-level unit tests by
// covering flag parsing, file I/O, and exit codes.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/concept"
	"repro/internal/event"
	"repro/internal/exp"
	"repro/internal/fa"
	"repro/internal/mine"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "repro-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	for _, tool := range []string{"strauss", "tsverify", "cable", "paper", "fca"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", tool, err, out)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

func tool(name string) string { return filepath.Join(binDir, name) }

// runTool executes a built binary, returning stdout+stderr and the exit code.
func runTool(t *testing.T, stdin string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(tool(name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, buf.String())
	}
	return buf.String(), code
}

// writeRunsFile converts generated concrete runs into the symbolic run
// records cmd/strauss reads (object identities become names).
func writeRunsFile(t *testing.T, path string, runs []mine.Run) {
	t.Helper()
	set := &trace.Set{}
	for _, r := range runs {
		tr := trace.Trace{ID: strings.ReplaceAll(r.ID, ":", "_")}
		for _, c := range r.Events {
			name := func(id event.ObjID) string {
				if id == 0 {
					return ""
				}
				return fmt.Sprintf("o%d", int(id))
			}
			e := event.Event{Op: c.Op, Def: name(c.Def)}
			for _, u := range c.Uses {
				e.Uses = append(e.Uses, name(u))
			}
			tr.Events = append(tr.Events, e)
		}
		set.Add(tr)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, set); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndMineVerifyDebug(t *testing.T) {
	dir := t.TempDir()
	stdio := specs.Stdio()
	gen := xtrace.Generator{Model: stdio.Model, Seed: 99}
	runs, _ := gen.Runs(30, 3)
	runsPath := filepath.Join(dir, "runs.txt")
	writeRunsFile(t, runsPath, runs)

	// 1. Mine a specification and dump the scenario traces.
	scPath := filepath.Join(dir, "scenarios.txt")
	minedPath := filepath.Join(dir, "mined.fa")
	out, code := runTool(t, "", "strauss",
		"-runs", runsPath, "-seeds", "fopen,popen",
		"-scenarios", scPath, "-o", minedPath)
	if code != 0 {
		t.Fatalf("strauss failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "extracted") || !strings.Contains(out, "learned FA") {
		t.Errorf("strauss output:\n%s", out)
	}
	minedFile, err := os.Open(minedPath)
	if err != nil {
		t.Fatal(err)
	}
	mined, err := fa.Read(minedFile)
	minedFile.Close()
	if err != nil {
		t.Fatalf("mined FA unreadable: %v", err)
	}
	if mined.NumStates() == 0 {
		t.Fatal("empty mined FA")
	}

	// 2. Verify the scenarios against the CORRECT spec: the erroneous
	// scenarios in the training runs must be flagged.
	specPath := filepath.Join(dir, "correct.fa")
	sf, err := os.Create(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Write(sf, stdio.FA); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	violPath := filepath.Join(dir, "violations.txt")
	out, code = runTool(t, "", "tsverify",
		"-fa", specPath, "-traces", scPath, "-violations", violPath, "-q")
	if code != 1 {
		t.Fatalf("tsverify exit = %d, want 1 (violations found):\n%s", code, out)
	}
	vf, err := os.Open(violPath)
	if err != nil {
		t.Fatal(err)
	}
	violations, err := trace.Read(vf)
	vf.Close()
	if err != nil || violations.Total() == 0 {
		t.Fatalf("violations file: %v (%d traces)", err, violations.Total())
	}

	// 3. Debug with the Cable REPL over a pipe: label everything, save the
	// labeling, and export the lattice.
	labelsPath := filepath.Join(dir, "labels.tsv")
	dotPath := filepath.Join(dir, "lattice.dot")
	script := strings.Join([]string{
		"ls",
		"label 0 good all", // concept 0 exists in every lattice
		"done",
		"save " + labelsPath,
		"dot " + dotPath,
		"quit",
	}, "\n")
	out, code = runTool(t, script, "cable", "-traces", scPath, "-fa", minedPath)
	if code != 0 {
		t.Fatalf("cable failed (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "concepts") || !strings.Contains(out, "labeled") {
		t.Errorf("cable output:\n%s", out)
	}
	if data, err := os.ReadFile(dotPath); err != nil || !strings.Contains(string(data), "digraph") {
		t.Errorf("lattice.dot: %v", err)
	}
	if _, err := os.ReadFile(labelsPath); err != nil {
		t.Errorf("labels.tsv: %v", err)
	}
}

func TestEndToEndRelearn(t *testing.T) {
	dir := t.TempDir()
	// Write good-only scenarios and relearn: the result must reject the
	// crossed close.
	set := trace.NewSet(
		trace.ParseEvents("a", "X = fopen()", "fclose(X)"),
		trace.ParseEvents("b", "X = fopen()", "fread(X)", "fclose(X)"),
		trace.ParseEvents("c", "X = popen()", "pclose(X)"),
	)
	goodPath := filepath.Join(dir, "good.txt")
	f, err := os.Create(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, set); err != nil {
		t.Fatal(err)
	}
	f.Close()
	outPath := filepath.Join(dir, "relearned.fa")
	out, code := runTool(t, "", "strauss", "-relearn", goodPath, "-o", outPath)
	if code != 0 {
		t.Fatalf("strauss -relearn failed:\n%s", out)
	}
	rf, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	relearned, err := fa.Read(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if relearned.Accepts(trace.ParseEvents("", "X = popen()", "fclose(X)")) {
		t.Error("relearned spec accepts crossed close")
	}
	if !relearned.Accepts(trace.ParseEvents("", "X = fopen()", "fclose(X)")) {
		t.Error("relearned spec rejects training trace")
	}
}

func TestEndToEndFCA(t *testing.T) {
	dir := t.TempDir()
	cxtPath := filepath.Join(dir, "animals.cxt")
	f, err := os.Create(cxtPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := concept.WriteContext(f, exp.AnimalsContext(), "animals"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out, code := runTool(t, "", "fca", "-cxt", cxtPath)
	if code != 0 || !strings.Contains(out, "12 concepts") {
		t.Errorf("fca text output (%d):\n%s", code, out)
	}
	out, code = runTool(t, "", "fca", "-cxt", cxtPath, "-dot")
	if code != 0 || !strings.Contains(out, "digraph") {
		t.Errorf("fca dot output (%d):\n%s", code, out)
	}

	// Traces + pattern route.
	scPath := filepath.Join(dir, "sc.txt")
	sf, _ := os.Create(scPath)
	set := trace.NewSet(
		trace.ParseEvents("t1", "a()", "b()"),
		trace.ParseEvents("t2", "a()"),
	)
	if err := trace.Write(sf, set); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	out, code = runTool(t, "", "fca", "-traces", scPath, "-pattern", "(a()|b())*")
	if code != 0 || !strings.Contains(out, "2 objects") {
		t.Errorf("fca pattern output (%d):\n%s", code, out)
	}
}

func TestEndToEndPaperTool(t *testing.T) {
	out, code := runTool(t, "", "paper", "-table", "1")
	if code != 0 || !strings.Contains(out, "XtFree") {
		t.Errorf("paper -table 1 (%d):\n%s", code, out)
	}
	out, code = runTool(t, "", "paper", "-figure", "wf")
	if code != 0 || !strings.Contains(out, "well-formed: false") {
		t.Errorf("paper -figure wf (%d):\n%s", code, out)
	}
	// Unknown figure: usage error.
	_, code = runTool(t, "", "paper", "-figure", "zzz")
	if code == 0 {
		t.Error("paper accepted unknown figure")
	}
}

func TestToolUsageErrors(t *testing.T) {
	for _, c := range []struct {
		name string
		args []string
	}{
		{"strauss", nil},
		{"tsverify", nil},
		{"cable", nil},
		{"paper", nil},
		{"fca", nil},
		{"tsverify", []string{"-fa", "/nonexistent", "-traces", "/nonexistent"}},
		{"cable", []string{"-traces", "/nonexistent"}},
	} {
		if _, code := runTool(t, "", c.name, c.args...); code == 0 {
			t.Errorf("%s %v succeeded, want nonzero exit", c.name, c.args)
		}
	}
}

func TestEndToEndWorkspaceResume(t *testing.T) {
	dir := t.TempDir()
	scPath := filepath.Join(dir, "sc.txt")
	f, err := os.Create(scPath)
	if err != nil {
		t.Fatal(err)
	}
	set := trace.NewSet(
		trace.ParseEvents("a", "X = fopen()", "fclose(X)"),
		trace.ParseEvents("b", "X = fopen()"),
	)
	if err := trace.Write(f, set); err != nil {
		t.Fatal(err)
	}
	f.Close()
	wsPath := filepath.Join(dir, "session.cws")

	// Session 1: label one concept, save the workspace, quit.
	script := "label 1 good all\nworkspace " + wsPath + "\nquit\n"
	out, code := runTool(t, script, "cable", "-traces", scPath)
	if code != 0 || !strings.Contains(out, "workspace written") {
		t.Fatalf("session 1 (%d):\n%s", code, out)
	}

	// Session 2: resume, confirm the labels survived, finish.
	script = "done\nlabel 0 bad unlabeled\ndone\nquit\n"
	out, code = runTool(t, script, "cable", "-workspace", wsPath)
	if code != 0 || !strings.Contains(out, "resumed workspace") {
		t.Fatalf("session 2 (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "done: true") {
		t.Errorf("resumed session could not finish:\n%s", out)
	}
}

func TestEndToEndProgSrc(t *testing.T) {
	dir := t.TempDir()
	progPath := filepath.Join(dir, "leaky.prog")
	specPath := filepath.Join(dir, "stdio.fa")
	if err := os.WriteFile(progPath, []byte(`
prog leaky {
  X := fopen();
  loop { fread(X); }
  choice { fclose(X); } or { skip; }
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Create(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Write(sf, specs.Stdio().FA); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	out, code := runTool(t, "", "tsverify", "-fa", specPath, "-progsrc", progPath, "-maxlen", "5")
	if code != 1 {
		t.Fatalf("tsverify -progsrc exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "static violation") || !strings.Contains(out, "X = fopen()") {
		t.Errorf("static output:\n%s", out)
	}
}

// TestExamplesRun builds and runs every example program, checking for the
// output markers that prove each walk-through reached its conclusion.
func TestExamplesRun(t *testing.T) {
	markers := map[string][]string{
		"quickstart":  {"fixed specification", "still accepted"},
		"minedebug":   {"relearned spec", "rejected"},
		"animals":     {"Figure 10", "digraph"},
		"focus":       {"well-formed: true", "merged"},
		"strategies":  {"Baseline (no Cable):", "Expert:"},
		"staticcheck": {"static verifier", "ranked"},
		"program":     {"static check", "debugged spec"},
	}
	for name, wants := range markers {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			var buf bytes.Buffer
			cmd.Stdout = &buf
			cmd.Stderr = &buf
			if err := cmd.Run(); err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, buf.String())
			}
			for _, want := range wants {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("example %s output missing %q:\n%s", name, want, buf.String())
				}
			}
		})
	}
}
